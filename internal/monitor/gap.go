package monitor

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// HostStatus classifies one host's outcome in one collection round.
type HostStatus string

// Host round outcomes.
const (
	// StatusOK: the host's logs were mirrored this round.
	StatusOK HostStatus = "ok"
	// StatusFailed: every attempt failed; the round's data is a gap until
	// a later round catches up (append-only logs make gaps recoverable in
	// content but not in timeliness).
	StatusFailed HostStatus = "failed"
	// StatusSkipped: the host's circuit breaker was open; no dial was made.
	StatusSkipped HostStatus = "skipped"
)

// HostOutcome is one host's result in one round.
type HostOutcome struct {
	HostID   string     `json:"host"`
	Status   HostStatus `json:"status"`
	Attempts int        `json:"attempts"`
	// Breaker is the breaker's state after the round.
	Breaker string `json:"breaker,omitempty"`
	// Err is the last attempt's error (failed rounds only).
	Err string `json:"err,omitempty"`
	// Transfer accounting, mirrored from RoundStats on success.
	Files        int `json:"files,omitempty"`
	LiteralBytes int `json:"literal_bytes,omitempty"`
	TotalBytes   int `json:"total_bytes,omitempty"`
}

// RoundReport is the complete record of one collection round: exactly one
// outcome per fleet host, in sorted host order. The §4.2.1 incidents the
// paper could only reconstruct from missing lines in its series are
// first-class records here.
type RoundReport struct {
	Round int           `json:"round"`
	At    time.Time     `json:"at"`
	Hosts []HostOutcome `json:"hosts"`
}

// Collected counts hosts mirrored this round.
func (r RoundReport) Collected() int {
	n := 0
	for _, h := range r.Hosts {
		if h.Status == StatusOK {
			n++
		}
	}
	return n
}

// Coverage is the fraction of hosts mirrored this round.
func (r RoundReport) Coverage() float64 {
	if len(r.Hosts) == 0 {
		return 0
	}
	return float64(r.Collected()) / float64(len(r.Hosts))
}

// maxRecordedMissedRounds caps the per-host list of missed round numbers a
// HostGap carries; the Missed counter itself is never truncated.
const maxRecordedMissedRounds = 256

// HostGap is one host's gap accounting, maintained by a GapLedger. Rounds
// are counted from the host's first appearance in a report, so a host
// installed late is not charged for rounds before it existed.
type HostGap struct {
	HostID string `json:"host"`
	// Collected and Missed partition the host's rounds; Missed includes
	// breaker-skipped rounds (no data arrived either way).
	Collected int `json:"collected"`
	Missed    int `json:"missed"`
	// Skipped counts the subset of Missed where the breaker saved a dial.
	Skipped int `json:"skipped,omitempty"`
	// LongestOutage is the longest run of consecutive missed rounds.
	LongestOutage int `json:"longest_outage,omitempty"`
	// MissedRounds lists the first maxRecordedMissedRounds missed round
	// numbers, for outage forensics.
	MissedRounds []int `json:"missed_rounds,omitempty"`

	outage int // current consecutive missed streak
}

// Rounds is the host's total accounted rounds.
func (hg HostGap) Rounds() int { return hg.Collected + hg.Missed }

// Coverage is the fraction of the host's rounds that produced data.
func (hg HostGap) Coverage() float64 {
	if hg.Rounds() == 0 {
		return 0
	}
	return float64(hg.Collected) / float64(hg.Rounds())
}

// GapLedger accumulates RoundReports into per-host coverage accounting:
// what fraction of host-rounds produced data, where the outages were, and
// how long the worst one lasted. It is the collector-side record of the
// gaps the paper's analysis had to work around (§4.2.1).
type GapLedger struct {
	mu     sync.Mutex
	rounds int
	hosts  map[string]*HostGap
	order  []string // sorted host IDs
}

// NewGapLedger returns an empty ledger.
func NewGapLedger() *GapLedger {
	return &GapLedger{hosts: make(map[string]*HostGap)}
}

// Record folds one round's outcomes into the ledger.
func (g *GapLedger) Record(rep RoundReport) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.rounds++
	for _, h := range rep.Hosts {
		hg, ok := g.hosts[h.HostID]
		if !ok {
			hg = &HostGap{HostID: h.HostID}
			g.hosts[h.HostID] = hg
			i := sort.SearchStrings(g.order, h.HostID)
			g.order = append(g.order, "")
			copy(g.order[i+1:], g.order[i:])
			g.order[i] = h.HostID
		}
		if h.Status == StatusOK {
			hg.Collected++
			hg.outage = 0
			continue
		}
		hg.Missed++
		if h.Status == StatusSkipped {
			hg.Skipped++
		}
		hg.outage++
		if hg.outage > hg.LongestOutage {
			hg.LongestOutage = hg.outage
		}
		if len(hg.MissedRounds) < maxRecordedMissedRounds {
			hg.MissedRounds = append(hg.MissedRounds, rep.Round)
		}
	}
}

// Rounds is the number of recorded rounds.
func (g *GapLedger) Rounds() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rounds
}

// Hosts returns the per-host gap accounting, sorted by host ID.
func (g *GapLedger) Hosts() []HostGap {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]HostGap, 0, len(g.order))
	for _, id := range g.order {
		hg := *g.hosts[id]
		hg.MissedRounds = append([]int(nil), hg.MissedRounds...)
		out = append(out, hg)
	}
	return out
}

// Coverage is the fleet-wide fraction of host-rounds that produced data.
func (g *GapLedger) Coverage() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	var collected, total int
	for _, hg := range g.hosts {
		collected += hg.Collected
		total += hg.Collected + hg.Missed
	}
	if total == 0 {
		return 0
	}
	return float64(collected) / float64(total)
}

// String renders the ledger deterministically — the byte-identical replay
// tests compare this rendering across chaos runs.
func (g *GapLedger) String() string {
	hosts := g.Hosts()
	var b strings.Builder
	fmt.Fprintf(&b, "gap ledger: %d rounds, fleet coverage %.4f\n", g.Rounds(), g.Coverage())
	for _, hg := range hosts {
		fmt.Fprintf(&b, "  %s: %d/%d collected (%.4f), %d skipped, longest outage %d, missed %v\n",
			hg.HostID, hg.Collected, hg.Rounds(), hg.Coverage(), hg.Skipped, hg.LongestOutage, hg.MissedRounds)
	}
	return b.String()
}
