package monitor

import (
	"bytes"
	"fmt"
	"math"
	"testing"
	"time"
)

func TestParseSamples(t *testing.T) {
	data := []byte("" +
		"2010-02-19T12:10:00Z cpu=-4.1 disk0=8.0\n" +
		"garbage line without timestamp\n" +
		"2010-02-19T12:30:00Z cpu=ERR chip not detected\n" +
		"2010-02-19T12:50:00Z cpu=-3.9\n")
	type sample struct {
		series string
		t      int64
		v      float64
	}
	var got []sample
	ParseSamples("01", data, func(series string, ts int64, v float64) {
		got = append(got, sample{series, ts, v})
	})
	want := []sample{
		{"01/cpu", time.Date(2010, 2, 19, 12, 10, 0, 0, time.UTC).UnixNano(), -4.1},
		{"01/disk0", time.Date(2010, 2, 19, 12, 10, 0, 0, time.UTC).UnixNano(), 8.0},
		{"01/cpu", time.Date(2010, 2, 19, 12, 50, 0, 0, time.UTC).UnixNano(), -3.9},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d samples, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sample %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestSampleDBTailBuffering(t *testing.T) {
	db := NewSampleDB()
	line := "2010-02-19T12:10:00Z cpu=-4.1\n"
	// Feed the line in three fragments, splitting mid-timestamp and
	// mid-value: nothing stores until the newline arrives.
	if n := db.Ingest("01", SensorLog, []byte(line[:10])); n != 0 {
		t.Fatalf("fragment 1 stored %d samples", n)
	}
	if n := db.Ingest("01", SensorLog, []byte(line[10:25])); n != 0 {
		t.Fatalf("fragment 2 stored %d samples", n)
	}
	if n := db.Ingest("01", SensorLog, []byte(line[25:])); n != 1 {
		t.Fatalf("fragment 3 stored %d samples, want 1", n)
	}
	it, err := db.Store().QueryAll("01/cpu")
	if err != nil {
		t.Fatal(err)
	}
	if !it.Next() || it.V() != -4.1 {
		t.Fatalf("stored sample missing or wrong: %v", it.Err())
	}
	if it.Next() {
		t.Fatal("extra sample stored")
	}
	// Out-of-order appends are dropped, not fatal.
	db.Ingest("01", SensorLog, []byte("2010-02-19T11:00:00Z cpu=-9.9\n"))
	if db.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", db.Dropped())
	}
}

// sensorLine renders one agent-style log line.
func sensorLine(at time.Time, v float64) []byte {
	return []byte(fmt.Sprintf("%s cpu=%.1f\n", at.UTC().Format(time.RFC3339), v))
}

func TestCollectorSamplesAndRetention(t *testing.T) {
	store := NewFileStore()
	agent := NewAgent("01", store)
	db := NewSampleDB()
	coll := NewCollector(64).WithSamples(db)
	const retain = 1 << 10
	coll.SetRetention(retain)

	// Many rounds, each appending lines; the mirror must stay capped
	// while the sample plane accumulates the full history.
	var wantSamples int
	at := t0
	var lastStats RoundStats
	for round := 0; round < 6; round++ {
		for i := 0; i < 20; i++ {
			store.Append(SensorLog, sensorLine(at, -5+0.1*float64(wantSamples%40)))
			at = at.Add(time.Minute)
			wantSamples++
		}
		aSess, cSess := connectPair(t, "01")
		done := make(chan error, 1)
		go func() { done <- agent.Serve(aSess) }()
		var err error
		lastStats, err = coll.CollectHost(cSess, "01", at)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := <-done; err != nil {
			t.Fatalf("round %d agent: %v", round, err)
		}
	}

	mirror := coll.Mirror("01")
	if got := mirror.Size(SensorLog); got > retain {
		t.Errorf("mirror holds %d bytes, cap %d", got, retain)
	}
	full := store.Get(SensorLog)
	trim := coll.TrimmedBytes("01", SensorLog)
	if trim == 0 {
		t.Fatal("retention never evicted despite cap overflow")
	}
	// The retained suffix must be the literal tail of the agent's file,
	// starting at a line boundary.
	kept := mirror.Get(SensorLog)
	if !bytes.Equal(kept, full[trim:]) {
		t.Error("mirror suffix diverged from agent file tail")
	}
	if trim > 0 && full[trim-1] != '\n' {
		t.Error("eviction cut mid-line")
	}
	// TotalBytes still reports the agent-side corpus, so Savings stays
	// comparable with uncapped collectors.
	if lastStats.TotalBytes != len(full) {
		t.Errorf("TotalBytes = %d, want agent file size %d", lastStats.TotalBytes, len(full))
	}
	if got := coll.MirrorBytes(); got != int64(len(kept)) {
		t.Errorf("MirrorBytes = %d, want %d", got, len(kept))
	}

	// Every appended sample made it into the compressed plane even
	// though most raw bytes were evicted.
	it, err := db.Store().QueryAll("01/cpu")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for it.Next() {
		want := -5 + 0.1*float64(n%40)
		if math.Abs(it.V()-want) > 1e-9 {
			t.Fatalf("sample %d = %g, want %g", n, it.V(), want)
		}
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if n != wantSamples {
		t.Fatalf("sample plane holds %d samples, want %d", n, wantSamples)
	}
	if db.Dropped() != 0 {
		t.Errorf("dropped %d samples", db.Dropped())
	}
}

func TestRetentionDoesNotRetransferEvictedPrefix(t *testing.T) {
	store := NewFileStore()
	agent := NewAgent("01", store)
	coll := NewCollector(64)
	coll.SetRetention(2 << 10)

	// Round 1: a file far beyond the cap.
	at := t0
	for i := 0; i < 200; i++ {
		store.Append(SensorLog, sensorLine(at, -4))
		at = at.Add(time.Minute)
	}
	aSess, cSess := connectPair(t, "01")
	go func() { _ = agent.Serve(aSess) }()
	if _, err := coll.CollectHost(cSess, "01", at); err != nil {
		t.Fatal(err)
	}
	if coll.TrimmedBytes("01", SensorLog) == 0 {
		t.Fatal("round 1 did not trim")
	}

	// Round 2: only a small tail is new. With ftSigAt the evicted
	// prefix must not come back as literal bytes.
	tail := sensorLine(at, -3.5)
	store.Append(SensorLog, tail)
	aSess2, cSess2 := connectPair(t, "01")
	go func() { _ = agent.Serve(aSess2) }()
	s2, err := coll.CollectHost(cSess2, "01", at.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if s2.LiteralBytes > len(tail)+256 {
		t.Errorf("round 2 moved %d literal bytes, want ≈ %d (offset-aware sync)", s2.LiteralBytes, len(tail))
	}
	full := store.Get(SensorLog)
	trim := coll.TrimmedBytes("01", SensorLog)
	if got := coll.Mirror("01").Get(SensorLog); !bytes.Equal(got, full[trim:]) {
		t.Error("mirror suffix diverged after offset-aware round")
	}
}
