package monitor

import "fmt"

// BreakerState is a per-host circuit breaker's position.
type BreakerState int

// Breaker states: closed (normal collection), open (host presumed down,
// rounds are skipped without dialling), half-open (one probe attempt
// allowed to test recovery).
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// BreakerConfig tunes the per-host circuit breaker. The cooldown is
// measured in collection rounds, not wall time, so breaker behaviour —
// like everything else in a chaos run — is a pure function of the round
// sequence and replays bit-identically.
type BreakerConfig struct {
	// Trip opens the breaker after this many consecutive failed rounds.
	// 0 disables the breaker (it stays closed forever).
	Trip int
	// Cooldown is how many rounds an open breaker skips before allowing a
	// half-open probe. Values below 1 mean 1.
	Cooldown int
}

// DefaultBreaker trips after 3 consecutive failed rounds and probes again
// after skipping 3 — with the paper's 20-minute cadence, a crashed host
// costs the collector one wasted dial per hour instead of three timeouts
// per round.
func DefaultBreaker() BreakerConfig {
	return BreakerConfig{Trip: 3, Cooldown: 3}
}

func (bc BreakerConfig) cooldown() int {
	if bc.Cooldown < 1 {
		return 1
	}
	return bc.Cooldown
}

// Breaker is one host's circuit breaker. It is driven once per round by
// the FleetCollector: Gate() before the host's attempts, then exactly one
// of OnSuccess or OnFailure (or nothing, when Gate denied the round). It
// is not safe for concurrent use; the fleet collector gives each host —
// and therefore each breaker — its own goroutine.
type Breaker struct {
	cfg     BreakerConfig
	state   BreakerState
	fails   int // consecutive failed rounds
	cooling int // rounds left before the open breaker half-opens
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg}
}

// State reports the breaker's position.
func (b *Breaker) State() BreakerState { return b.state }

// ConsecutiveFailures reports the current failed-round streak.
func (b *Breaker) ConsecutiveFailures() int { return b.fails }

// Gate is called once at the start of a round. allow reports whether the
// host may be collected at all this round; probe restricts an allowed
// round to a single attempt (the half-open probe).
func (b *Breaker) Gate() (allow, probe bool) {
	switch b.state {
	case BreakerOpen:
		if b.cooling > 0 {
			b.cooling--
			return false, false
		}
		b.state = BreakerHalfOpen
		return true, true
	case BreakerHalfOpen:
		return true, true
	default:
		return true, false
	}
}

// OnSuccess records a collected round: any breaker closes.
func (b *Breaker) OnSuccess() {
	b.state = BreakerClosed
	b.fails = 0
}

// OnFailure records a round whose every attempt failed. A failed half-open
// probe re-opens immediately; a closed breaker opens once the consecutive
// failure count reaches Trip.
func (b *Breaker) OnFailure() {
	b.fails++
	if b.state == BreakerHalfOpen {
		b.state = BreakerOpen
		b.cooling = b.cfg.cooldown()
		return
	}
	if b.cfg.Trip > 0 && b.fails >= b.cfg.Trip {
		b.state = BreakerOpen
		b.cooling = b.cfg.cooldown()
	}
}
