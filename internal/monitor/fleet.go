package monitor

import (
	"context"
	"crypto/rand"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"frostlab/internal/telemetry"
	"frostlab/internal/wire"
)

// DialFunc opens a transport to one host for one collection attempt.
// Round and attempt are 1-based; they exist so deterministic dialers (and
// the chaos injector wrapping them) can key their behaviour to the exact
// attempt being made.
type DialFunc func(ctx context.Context, hostID string, round, attempt int) (net.Conn, error)

// FleetConfig configures a FleetCollector.
type FleetConfig struct {
	// Hosts is the fleet roster. It is copied and sorted at construction;
	// reports list hosts in sorted order.
	Hosts []string
	// Dial opens the transport to a host.
	Dial DialFunc
	// KeyFor resolves a host's pre-shared key.
	KeyFor func(hostID string) ([]byte, error)
	// NonceFor supplies the collector-side handshake nonce for an attempt.
	// nil uses crypto/rand (production); deterministic runs pass
	// wire.CounterNonce-backed nonces keyed to (host, round, attempt).
	NonceFor func(hostID string, round, attempt int) wire.Nonce

	// Retry bounds per-host attempts within a round.
	Retry RetryPolicy
	// Breaker configures the per-host circuit breakers.
	Breaker BreakerConfig

	// PhaseTimeout is the per-read/-write deadline set on the connection
	// before every I/O operation, so one stalled agent can never wedge a
	// round (the §4.2.1 failure the seed collector had). 0 disables.
	PhaseTimeout time.Duration
	// RoundTimeout bounds one whole round; when it expires, in-flight
	// connections are torn down and remaining attempts abandoned. 0
	// disables.
	RoundTimeout time.Duration

	// Jitter supplies the backoff jitter draw in [0,1) for an attempt.
	// nil uses DeterministicJitter("").
	Jitter func(hostID string, round, attempt int) float64
	// Sleep pauses between attempts. nil sleeps on the real clock,
	// honouring ctx; deterministic tests inject a recorder that returns
	// immediately.
	Sleep func(ctx context.Context, d time.Duration) error

	// Concurrency caps hosts collected in parallel (0 = all at once).
	// The cap also bounds the round's goroutine fan-out: a round spawns
	// min(Concurrency, len(Hosts)) workers, not one goroutine per host,
	// so a 100k-host fleet with Concurrency 64 costs 64 goroutines.
	Concurrency int

	// Pool, when non-nil, enables cross-round connection reuse: sessions
	// that complete a round are parked and health-checked (ftPing) before
	// the next one, replacing dial-per-attempt. See PoolConfig.
	Pool *PoolConfig

	// Tracer, when non-nil, records collection-plane spans with wall-clock
	// timestamps: one "round" span on track 0 and one "collect <host>" span
	// per host-round on that host's track. The tracer is concurrency-safe,
	// so parallel host goroutines emit directly.
	Tracer *telemetry.Tracer
}

// FleetCollector drives collection rounds across a fleet with bounded
// retries, per-host circuit breakers, deadlines, and gap accounting. It
// wraps a Collector (which owns the mirrors and transfer statistics) and
// adds the reliability layer the paper's monitoring host lacked.
//
// Round must not be called concurrently with itself; within a round, hosts
// are collected in parallel.
type FleetCollector struct {
	cfg      FleetConfig
	coll     *Collector
	breakers map[string]*Breaker
	ledger   *GapLedger
	tids     map[string]int // tracer track per host; 0 is the fleet track
	pool     *connPool      // nil unless cfg.Pool is set

	// met is nil until Instrument attaches a registry; see metrics.go.
	met *fleetMetrics

	// staleConns counts parked connections found dead on pickup. Unlike
	// the telemetry mirror it is always on, so the rules engine can
	// watch pool churn even without an instrumented registry.
	staleConns atomic.Uint64

	mu      sync.Mutex
	reports []RoundReport
	round   int
}

// PoolStaleTotal reports how many pooled connections were found dead
// when picked up for a round.
func (fc *FleetCollector) PoolStaleTotal() uint64 { return fc.staleConns.Load() }

// NewFleetCollector validates the configuration and returns a collector
// with closed breakers and an empty gap ledger.
func NewFleetCollector(coll *Collector, cfg FleetConfig) (*FleetCollector, error) {
	if coll == nil {
		return nil, fmt.Errorf("monitor: nil Collector")
	}
	if len(cfg.Hosts) == 0 {
		return nil, fmt.Errorf("monitor: fleet has no hosts")
	}
	if cfg.Dial == nil {
		return nil, fmt.Errorf("monitor: FleetConfig.Dial is required")
	}
	if cfg.KeyFor == nil {
		return nil, fmt.Errorf("monitor: FleetConfig.KeyFor is required")
	}
	cfg.Hosts = append([]string(nil), cfg.Hosts...)
	sort.Strings(cfg.Hosts)
	if cfg.Jitter == nil {
		cfg.Jitter = DeterministicJitter("")
	}
	if cfg.Sleep == nil {
		cfg.Sleep = SleepContext
	}
	fc := &FleetCollector{
		cfg:      cfg,
		coll:     coll,
		breakers: make(map[string]*Breaker, len(cfg.Hosts)),
		ledger:   NewGapLedger(),
		tids:     make(map[string]int, len(cfg.Hosts)),
	}
	if cfg.Pool != nil {
		fc.pool = newConnPool()
	}
	for i, h := range cfg.Hosts {
		fc.breakers[h] = NewBreaker(cfg.Breaker)
		fc.tids[h] = i + 1
	}
	if cfg.Tracer != nil {
		cfg.Tracer.SetThreadName(0, "fleet")
		for _, h := range cfg.Hosts {
			cfg.Tracer.SetThreadName(fc.tids[h], "host "+h)
		}
	}
	return fc, nil
}

// Collector returns the wrapped mirror-owning collector.
func (fc *FleetCollector) Collector() *Collector { return fc.coll }

// Ledger returns the gap ledger.
func (fc *FleetCollector) Ledger() *GapLedger { return fc.ledger }

// Reports returns all completed round reports.
func (fc *FleetCollector) Reports() []RoundReport {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	out := make([]RoundReport, len(fc.reports))
	copy(out, fc.reports)
	return out
}

// BreakerState reports one host's breaker position.
func (fc *FleetCollector) BreakerState(hostID string) BreakerState {
	if b, ok := fc.breakers[hostID]; ok {
		return b.State()
	}
	return BreakerClosed
}

// Round runs one collection round over the whole fleet and returns its
// report. Hosts proceed in parallel; each host's outcome is independent of
// the others, so reports are deterministic under deterministic dialers
// regardless of goroutine interleaving.
func (fc *FleetCollector) Round(ctx context.Context, now time.Time) RoundReport {
	fc.round++
	round := fc.round
	var wallStart time.Time
	if fc.met != nil || fc.cfg.Tracer != nil {
		// The wall clock is only read when someone is watching, so
		// uninstrumented deterministic runs stay byte-identical.
		wallStart = time.Now()
	}
	if fc.cfg.RoundTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, fc.cfg.RoundTimeout)
		defer cancel()
	}
	conc := fc.cfg.Concurrency
	if conc <= 0 || conc > len(fc.cfg.Hosts) {
		conc = len(fc.cfg.Hosts)
	}
	// Bounded fan-out: conc workers pull host indexes from a channel, so
	// the round's goroutine count is the concurrency cap, not the fleet
	// size. Outcomes land in fleet order regardless of which worker runs
	// which host, so reports stay deterministic under deterministic
	// dialers exactly as before.
	outcomes := make([]HostOutcome, len(fc.cfg.Hosts))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				outcomes[i] = fc.collectHost(ctx, fc.cfg.Hosts[i], round, now)
			}
		}()
	}
	for i := range fc.cfg.Hosts {
		idx <- i
	}
	close(idx)
	wg.Wait()
	rep := RoundReport{Round: round, At: now, Hosts: outcomes}
	fc.ledger.Record(rep)
	if fc.met != nil || fc.cfg.Tracer != nil {
		wallDur := time.Since(wallStart)
		fc.observeRound(rep, wallDur)
		if tr := fc.cfg.Tracer; tr != nil {
			tr.Span("round", "collect", 0, wallStart, wallDur)
			tr.Counter("fleet_coverage", wallStart.Add(wallDur), fc.ledger.Coverage())
		}
	}
	fc.mu.Lock()
	fc.reports = append(fc.reports, rep)
	fc.mu.Unlock()
	return rep
}

// collectHost runs one host's round: breaker gate, then up to MaxAttempts
// tries with backoff between them.
func (fc *FleetCollector) collectHost(ctx context.Context, hostID string, round int, now time.Time) HostOutcome {
	out := HostOutcome{HostID: hostID}
	br := fc.breakers[hostID]
	if tr := fc.cfg.Tracer; tr != nil {
		start := time.Now()
		defer func() {
			tr.Span("collect "+hostID, "host", fc.tids[hostID], start, time.Since(start))
		}()
	}
	// Publish the breaker's position after the round settles, so the
	// closed→open→half-open→closed walk of a flapping host is visible
	// across scrapes.
	defer func() { fc.observeBreaker(hostID, br.State()) }()
	allow, probe := br.Gate()
	if !allow {
		out.Status = StatusSkipped
		out.Err = "breaker open"
		out.Breaker = br.State().String()
		return out
	}
	maxAttempts := fc.cfg.Retry.attempts()
	if probe {
		maxAttempts = 1
	}
	var lastErr error
	attempts := 0
	for a := 1; a <= maxAttempts; a++ {
		if a > 1 {
			// The backoff wait is context-aware: a round deadline or a
			// shutdown signal interrupts the pause instead of running it
			// out. The jitter draw happens unconditionally so chaos
			// replays keep their deterministic draw sequence.
			if err := fc.cfg.Retry.WaitContext(ctx, a-1, fc.cfg.Jitter(hostID, round, a), fc.cfg.Sleep); err != nil {
				lastErr = err
				break
			}
		}
		attempts = a
		stats, err := fc.attempt(ctx, hostID, round, a, now)
		if err == nil {
			br.OnSuccess()
			out.Status = StatusOK
			out.Attempts = a
			out.Breaker = br.State().String()
			out.Files = stats.Files
			out.LiteralBytes = stats.LiteralBytes
			out.TotalBytes = stats.TotalBytes
			return out
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	br.OnFailure()
	out.Status = StatusFailed
	out.Attempts = attempts
	if lastErr != nil {
		out.Err = lastErr.Error()
	}
	out.Breaker = br.State().String()
	return out
}

// attempt performs one collect try against a host: a pooled keepalive
// session when one is parked and healthy, a fresh dial-handshake
// otherwise. On success with a pool, the session is parked for the next
// round; on any failure (or without a pool) the transport is torn down.
func (fc *FleetCollector) attempt(ctx context.Context, hostID string, round, attempt int, now time.Time) (RoundStats, error) {
	if err := ctx.Err(); err != nil {
		return RoundStats{}, err
	}
	pc, err := fc.session(ctx, hostID, round, attempt)
	if err != nil {
		return RoundStats{}, err
	}

	// Watchdog: context cancellation (round timeout, shutdown signal)
	// closes the connection, unblocking any in-flight read or write.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ctx.Done():
			pc.conn.Close()
		case <-stop:
		}
	}()
	stopWatchdog := func() { close(stop); <-done }

	var stats RoundStats
	if fc.pool != nil {
		stats, err = fc.coll.CollectHostKeepAlive(ctx, pc.sess, hostID, now)
	} else {
		stats, err = fc.coll.CollectHostContext(ctx, pc.sess, hostID, now)
	}
	stopWatchdog()
	if err != nil {
		pc.conn.Close()
		return stats, fmt.Errorf("collect: %w", err)
	}
	if fc.pool != nil {
		// The watchdog is stopped before parking, so a later round (or
		// the pool itself) owns the teardown from here on.
		fc.pool.put(hostID, pc)
	} else {
		pc.conn.Close()
	}
	return stats, nil
}

// session produces the attempt's authenticated session. With a pool, a
// parked session is health-checked first — an injected pool fault severs
// it before the ping, so the check fails and the attempt falls through to
// a fresh dial. A stale keepalive therefore costs one ping round-trip,
// never a failed attempt.
func (fc *FleetCollector) session(ctx context.Context, hostID string, round, attempt int) (*pooledConn, error) {
	if fc.pool != nil {
		if pc := fc.pool.get(hostID); pc != nil {
			if fc.cfg.Pool.Fault != nil && fc.cfg.Pool.Fault(hostID, round) {
				// The parked transport died while idle (agent restart,
				// injected chaos): sever it so the health check sees a
				// dead conn, exactly as production would.
				pc.conn.Close()
				fc.staleConns.Add(1)
				fc.countPoolStale(hostID)
			}
			if err := ping(pc.sess); err == nil {
				fc.countPoolHit(hostID)
				return pc, nil
			}
			pc.conn.Close()
			fc.countPoolRetired(hostID)
		}
	}
	conn, err := fc.cfg.Dial(ctx, hostID, round, attempt)
	if err != nil {
		return nil, fmt.Errorf("dial: %w", err)
	}
	rw := &phaseConn{Conn: conn, timeout: fc.cfg.PhaseTimeout}
	psk, err := fc.cfg.KeyFor(hostID)
	if err != nil {
		conn.Close()
		return nil, err
	}
	nonce := wire.Nonce(randNonce)
	if fc.cfg.NonceFor != nil {
		nonce = fc.cfg.NonceFor(hostID, round, attempt)
	}
	sess, err := wire.Dial(rw, hostID, psk, nonce)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("handshake: %w", err)
	}
	fc.countDial(hostID)
	return &pooledConn{conn: conn, sess: sess}, nil
}

// Close retires every pooled keepalive session with a clean bye. It is
// the shutdown counterpart of FleetConfig.Pool and a no-op without one;
// Round must not be running concurrently.
func (fc *FleetCollector) Close() {
	if fc.pool != nil {
		fc.pool.close()
	}
}

// PooledSessions reports the idle keepalive sessions currently parked
// (0 without a pool).
func (fc *FleetCollector) PooledSessions() int {
	if fc.pool == nil {
		return 0
	}
	return fc.pool.size()
}

// phaseConn arms a fresh deadline before every read and write, so each
// protocol phase — not just the dial — is individually bounded. This is
// the fix for the seed collector's unbounded-stall hang.
type phaseConn struct {
	net.Conn
	timeout time.Duration
}

func (p *phaseConn) Read(b []byte) (int, error) {
	if p.timeout > 0 {
		if err := p.Conn.SetReadDeadline(time.Now().Add(p.timeout)); err != nil {
			return 0, err
		}
	}
	return p.Conn.Read(b)
}

func (p *phaseConn) Write(b []byte) (int, error) {
	if p.timeout > 0 {
		if err := p.Conn.SetWriteDeadline(time.Now().Add(p.timeout)); err != nil {
			return 0, err
		}
	}
	return p.Conn.Write(b)
}

// randNonce is the production crypto/rand-backed wire.Nonce.
func randNonce() ([]byte, error) {
	b := make([]byte, wire.NonceSize)
	_, err := rand.Read(b)
	return b, err
}

// InProcessDialer serves dials from in-memory agents over net.Pipe: the
// exact protocol path cmd/collectord runs over TCP, with one agent
// goroutine per connection and handshake nonces derived deterministically
// from nonceSeed and the (host, round, attempt) being dialled. The chaos
// injector wraps this dialer to run monitoring-outage studies in-process.
func InProcessDialer(agents map[string]*Agent, keys wire.Keystore, nonceSeed string) DialFunc {
	return func(ctx context.Context, hostID string, round, attempt int) (net.Conn, error) {
		agent, ok := agents[hostID]
		if !ok {
			return nil, fmt.Errorf("monitor: no in-process agent %q", hostID)
		}
		a, c := net.Pipe()
		go func() {
			defer a.Close()
			label := fmt.Sprintf("%s/%s/r%d/a%d/agent", nonceSeed, hostID, round, attempt)
			sess, err := wire.Accept(a, keys, wire.CounterNonce(label))
			if err != nil {
				return
			}
			_ = agent.Serve(sess)
		}()
		return c, nil
	}
}

// InProcessNonces is the collector-side counterpart of InProcessDialer's
// agent nonces: deterministic per-attempt handshake nonces for replayable
// chaos runs.
func InProcessNonces(nonceSeed string) func(hostID string, round, attempt int) wire.Nonce {
	return func(hostID string, round, attempt int) wire.Nonce {
		return wire.CounterNonce(fmt.Sprintf("%s/%s/r%d/a%d/coll", nonceSeed, hostID, round, attempt))
	}
}
