package monitor

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"frostlab/internal/wire"
)

var t0 = time.Date(2010, time.February, 19, 12, 0, 0, 0, time.UTC)

func TestFileStoreBasics(t *testing.T) {
	fs := NewFileStore()
	if got := fs.Get("missing"); got != nil {
		t.Errorf("missing file = %v", got)
	}
	fs.Append(MD5Log, []byte("line1\n"))
	fs.Append(MD5Log, []byte("line2\n"))
	if got := string(fs.Get(MD5Log)); got != "line1\nline2\n" {
		t.Errorf("append result %q", got)
	}
	fs.Put(SensorLog, []byte("temp -4\n"))
	names := fs.Names()
	if len(names) != 2 || names[0] != MD5Log || names[1] != SensorLog {
		t.Errorf("names %v", names)
	}
	if fs.Size(MD5Log) != 12 {
		t.Errorf("size %d", fs.Size(MD5Log))
	}
	// Get must return a copy.
	g := fs.Get(MD5Log)
	g[0] = 'X'
	if fs.Get(MD5Log)[0] == 'X' {
		t.Error("Get exposed internal buffer")
	}
}

func TestFileStoreConcurrent(t *testing.T) {
	fs := NewFileStore()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				fs.Append(fmt.Sprintf("f%d", i%2), []byte("x"))
				_ = fs.Get("f0")
				_ = fs.Names()
			}
		}(i)
	}
	wg.Wait()
	if fs.Size("f0")+fs.Size("f1") != 800 {
		t.Errorf("lost appends: %d + %d", fs.Size("f0"), fs.Size("f1"))
	}
}

// connectPair builds an authenticated agent/collector session pair over an
// in-memory pipe.
func connectPair(t *testing.T, hostID string) (agentSess, collSess *wire.Session) {
	t.Helper()
	keys := wire.Keystore{hostID: []byte("key-" + hostID)}
	a, c := net.Pipe()
	t.Cleanup(func() { a.Close(); c.Close() })
	var wg sync.WaitGroup
	var aerr, cerr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		agentSess, aerr = wire.Accept(a, keys, wire.CounterNonce("agent"))
	}()
	go func() {
		defer wg.Done()
		collSess, cerr = wire.Dial(c, hostID, keys[hostID], wire.CounterNonce("coll"))
	}()
	wg.Wait()
	if aerr != nil || cerr != nil {
		t.Fatalf("handshake: %v / %v", aerr, cerr)
	}
	return agentSess, collSess
}

func TestCollectRoundOverPipe(t *testing.T) {
	store := NewFileStore()
	store.Append(MD5Log, []byte("cycle1 ok d41d8cd9\n"))
	store.Append(SensorLog, []byte("2010-02-19 cpu=-4.0\n"))
	agent := NewAgent("01", store)
	coll := NewCollector(0)

	agentSess, collSess := connectPair(t, "01")
	done := make(chan error, 1)
	go func() { done <- agent.Serve(agentSess) }()
	stats, err := coll.CollectHost(collSess, "01", t0)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("agent: %v", err)
	}
	if stats.Files != 2 {
		t.Errorf("synced %d files, want 2", stats.Files)
	}
	mirror := coll.Mirror("01")
	if !bytes.Equal(mirror.Get(MD5Log), store.Get(MD5Log)) {
		t.Error("md5 log mirror differs")
	}
	if !bytes.Equal(mirror.Get(SensorLog), store.Get(SensorLog)) {
		t.Error("sensor log mirror differs")
	}
	if len(coll.History()) != 1 {
		t.Errorf("history %d rounds", len(coll.History()))
	}
}

func TestIncrementalRoundsMoveOnlyNewBytes(t *testing.T) {
	store := NewFileStore()
	bulk := bytes.Repeat([]byte("sensor line with some content 12345\n"), 2000)
	store.Append(SensorLog, bulk)
	agent := NewAgent("01", store)
	coll := NewCollector(512)

	// Round 1: everything travels.
	aSess, cSess := connectPair(t, "01")
	go func() { _ = agent.Serve(aSess) }()
	s1, err := coll.CollectHost(cSess, "01", t0)
	if err != nil {
		t.Fatal(err)
	}
	if s1.LiteralBytes < len(bulk) {
		t.Errorf("first round moved %d literal bytes, want >= %d", s1.LiteralBytes, len(bulk))
	}

	// Round 2: only the appended tail should travel.
	tail := []byte("new reading appended after round one\n")
	store.Append(SensorLog, tail)
	aSess2, cSess2 := connectPair(t, "01")
	go func() { _ = agent.Serve(aSess2) }()
	s2, err := coll.CollectHost(cSess2, "01", t0.Add(CollectionPeriod))
	if err != nil {
		t.Fatal(err)
	}
	if s2.LiteralBytes > len(tail)+1024 {
		t.Errorf("second round moved %d literal bytes, want ≈ %d (delta sync)", s2.LiteralBytes, len(tail))
	}
	if !bytes.Equal(coll.Mirror("01").Get(SensorLog), store.Get(SensorLog)) {
		t.Error("mirror diverged after incremental round")
	}
	if s2.Savings() < 0.9 {
		t.Errorf("savings %.2f, want > 0.9 for an append-only log", s2.Savings())
	}
}

func TestCollectOverRealTCP(t *testing.T) {
	// The full networked path: TCP listener, authenticated session,
	// delta-synced collection — cmd/collectord and cmd/nodeagent in
	// miniature.
	store := NewFileStore()
	store.Append(MD5Log, []byte("01 ok\n02 ok\n"))
	agent := NewAgent("02", store)
	keys := wire.Keystore{"02": []byte("tcp-key")}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	serveErr := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			serveErr <- err
			return
		}
		defer conn.Close()
		sess, err := wire.Accept(conn, keys, wire.CounterNonce("srv"))
		if err != nil {
			serveErr <- err
			return
		}
		serveErr <- agent.Serve(sess)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sess, err := wire.Dial(conn, "02", keys["02"], wire.CounterNonce("cli"))
	if err != nil {
		t.Fatal(err)
	}
	coll := NewCollector(0)
	stats, err := coll.CollectHost(sess, "02", t0)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("agent over TCP: %v", err)
	}
	if stats.Files != 1 || !bytes.Equal(coll.Mirror("02").Get(MD5Log), store.Get(MD5Log)) {
		t.Error("TCP collection incomplete")
	}
}

func TestCollectEmptyAgent(t *testing.T) {
	agent := NewAgent("01", NewFileStore())
	coll := NewCollector(0)
	aSess, cSess := connectPair(t, "01")
	go func() { _ = agent.Serve(aSess) }()
	stats, err := coll.CollectHost(cSess, "01", t0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Files != 0 || stats.TotalBytes != 0 {
		t.Errorf("empty agent stats %+v", stats)
	}
}

func TestAgentReportsErrors(t *testing.T) {
	agent := NewAgent("01", NewFileStore())
	aSess, cSess := connectPair(t, "01")
	go func() { _ = agent.Serve(aSess) }()
	// Send a malformed signature frame directly.
	if err := cSess.Send(ftSig, encodeNamed("x", []byte("not a signature"))); err != nil {
		t.Fatal(err)
	}
	ft, payload, err := cSess.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ft != ftError || len(payload) == 0 {
		t.Errorf("frame %d %q, want error frame", ft, payload)
	}
	// Agent must still be serving after the error.
	if err := cSess.Send(ftBye, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAgentUnknownFrame(t *testing.T) {
	agent := NewAgent("01", NewFileStore())
	aSess, cSess := connectPair(t, "01")
	go func() { _ = agent.Serve(aSess) }()
	if err := cSess.Send(99, nil); err != nil {
		t.Fatal(err)
	}
	ft, payload, err := cSess.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ft != ftError || !strings.Contains(string(payload), "unknown frame") {
		t.Errorf("frame %d %q", ft, payload)
	}
	_ = cSess.Send(ftBye, nil)
}

func TestRemoteErrorSurfacesInCollect(t *testing.T) {
	// An agent error mid-round must surface as ErrRemote. Arrange by
	// having a rogue "agent" that always errors.
	keys := wire.Keystore{"01": []byte("key-01")}
	a, c := net.Pipe()
	defer a.Close()
	defer c.Close()
	var wg sync.WaitGroup
	var aSess, cSess *wire.Session
	var aerr, cerr error
	wg.Add(2)
	go func() { defer wg.Done(); aSess, aerr = wire.Accept(a, keys, wire.CounterNonce("a")) }()
	go func() { defer wg.Done(); cSess, cerr = wire.Dial(c, "01", keys["01"], wire.CounterNonce("c")) }()
	wg.Wait()
	if aerr != nil || cerr != nil {
		t.Fatal(aerr, cerr)
	}
	go func() {
		_, _, _ = aSess.Recv()
		_ = aSess.Send(ftError, []byte("disk on fire"))
	}()
	coll := NewCollector(0)
	_, err := coll.CollectHost(cSess, "01", t0)
	if !errors.Is(err, ErrRemote) {
		t.Errorf("error %v, want ErrRemote", err)
	}
}

func TestDecodeNamedValidation(t *testing.T) {
	if _, _, err := decodeNamed(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, _, err := decodeNamed([]byte{0, 9, 'a'}); err == nil {
		t.Error("overlong name accepted")
	}
	name, rest, err := decodeNamed(encodeNamed("file.log", []byte("payload")))
	if err != nil || name != "file.log" || string(rest) != "payload" {
		t.Errorf("round trip: %q %q %v", name, rest, err)
	}
}

func TestRoundStatsSavings(t *testing.T) {
	if s := (RoundStats{}).Savings(); s != 0 {
		t.Errorf("zero round savings %v", s)
	}
	rs := RoundStats{LiteralBytes: 100, TotalBytes: 1000}
	if s := rs.Savings(); s != 0.9 {
		t.Errorf("savings %v, want 0.9", s)
	}
}

func BenchmarkCollectionRound(b *testing.B) {
	store := NewFileStore()
	store.Append(SensorLog, bytes.Repeat([]byte("reading\n"), 50000))
	agent := NewAgent("01", store)
	keys := wire.Keystore{"01": []byte("key")}
	coll := NewCollector(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, c := net.Pipe()
		var wg sync.WaitGroup
		var aSess, cSess *wire.Session
		wg.Add(2)
		go func() { defer wg.Done(); aSess, _ = wire.Accept(a, keys, wire.CounterNonce("a")) }()
		go func() { defer wg.Done(); cSess, _ = wire.Dial(c, "01", keys["01"], wire.CounterNonce("c")) }()
		wg.Wait()
		go func() { _ = agent.Serve(aSess) }()
		if _, err := coll.CollectHost(cSess, "01", t0); err != nil {
			b.Fatal(err)
		}
		a.Close()
		c.Close()
		store.Append(SensorLog, []byte("one more line\n"))
	}
}
