package monitor

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
)

// countingDialer wraps a DialFunc and counts the dials it serves.
func countingDialer(next DialFunc, n *atomic.Int64) DialFunc {
	return func(ctx context.Context, hostID string, round, attempt int) (net.Conn, error) {
		n.Add(1)
		return next(ctx, hostID, round, attempt)
	}
}

func TestPoolReusesSessionsAcrossRounds(t *testing.T) {
	ids := []string{"01", "02", "03"}
	agents, keys := testFleet(t, ids)
	var dials atomic.Int64
	cfg := testConfig(ids, agents, keys, &fakeSleeper{})
	cfg.Dial = countingDialer(cfg.Dial, &dials)
	cfg.Pool = &PoolConfig{}
	fc, err := NewFleetCollector(NewCollector(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	for round := 1; round <= 4; round++ {
		rep := fc.Round(context.Background(), fleetT0)
		for _, h := range rep.Hosts {
			if h.Status != StatusOK {
				t.Fatalf("round %d host %s = %+v", round, h.HostID, h)
			}
		}
	}
	// Round 1 dialled every host; rounds 2-4 rode the pooled keepalives.
	if got := dials.Load(); got != int64(len(ids)) {
		t.Errorf("dials after 4 rounds = %d, want %d (one per host)", got, len(ids))
	}
	if got := fc.PooledSessions(); got != len(ids) {
		t.Errorf("pooled sessions = %d, want %d", got, len(ids))
	}

	fc.Close()
	if got := fc.PooledSessions(); got != 0 {
		t.Errorf("pooled sessions after Close = %d, want 0", got)
	}
}

func TestPoolFaultForcesRedial(t *testing.T) {
	ids := []string{"01", "02"}
	agents, keys := testFleet(t, ids)
	var dials atomic.Int64
	cfg := testConfig(ids, agents, keys, &fakeSleeper{})
	cfg.Dial = countingDialer(cfg.Dial, &dials)
	// Sever host 01's parked keepalive before every pickup in round 3.
	cfg.Pool = &PoolConfig{Fault: func(hostID string, round int) bool {
		return hostID == "01" && round == 3
	}}
	fc, err := NewFleetCollector(NewCollector(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	for round := 1; round <= 4; round++ {
		rep := fc.Round(context.Background(), fleetT0)
		for _, h := range rep.Hosts {
			// The injected fault must cost a ping round-trip, never an
			// attempt: every host-round still succeeds on attempt 1.
			if h.Status != StatusOK || h.Attempts != 1 {
				t.Fatalf("round %d host %s = %+v", round, h.HostID, h)
			}
		}
	}
	// 2 initial dials + exactly 1 redial for the severed keepalive.
	if got := dials.Load(); got != 3 {
		t.Errorf("dials = %d, want 3 (2 initial + 1 fault redial)", got)
	}
}

func TestPoolWithoutConfigDialsEveryRound(t *testing.T) {
	ids := []string{"01"}
	agents, keys := testFleet(t, ids)
	var dials atomic.Int64
	cfg := testConfig(ids, agents, keys, &fakeSleeper{})
	cfg.Dial = countingDialer(cfg.Dial, &dials)
	fc, err := NewFleetCollector(NewCollector(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 3; round++ {
		fc.Round(context.Background(), fleetT0)
	}
	if got := dials.Load(); got != 3 {
		t.Errorf("dials without pool = %d, want 3 (one per round)", got)
	}
	if got := fc.PooledSessions(); got != 0 {
		t.Errorf("pooled sessions without pool = %d", got)
	}
	fc.Close() // no-op without a pool
}
