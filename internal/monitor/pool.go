package monitor

import (
	"fmt"
	"net"
	"sync"

	"frostlab/internal/wire"
)

// PoolConfig enables cross-round connection reuse in a FleetCollector.
// With a pool configured, a successful collection parks its authenticated
// session instead of tearing it down; the next round pings the parked
// session and, if it answers, skips the dial and handshake entirely. At
// the paper's 20-minute cadence the handshake is noise, but under load —
// a 1k-host fleet collected every few seconds — dial-per-attempt is the
// dominant per-round cost and a keepalive pool removes it.
type PoolConfig struct {
	// Fault, when non-nil, is consulted once per pooled pickup with the
	// host and round being collected. Returning true severs the parked
	// connection before the health check runs — the chaos injector's hook
	// (chaos.Injector.StaleConn) for "the agent restarted while the
	// collector held a keepalive to it". The health check then fails, the
	// session is retired, and the attempt falls back to a fresh dial, so
	// an injected pool fault costs one ping round-trip, never a round.
	Fault func(hostID string, round int) bool
}

// pooledConn is one idle keepalive session: the raw connection (for
// teardown and the watchdog) and the authenticated session riding it.
type pooledConn struct {
	conn net.Conn
	sess *wire.Session
}

// connPool holds at most one idle authenticated session per host. It is
// deliberately that small: a FleetCollector collects each host at most
// once per round, so a deeper per-host pool would only hold dead weight.
type connPool struct {
	mu     sync.Mutex
	idle   map[string]*pooledConn
	closed bool
}

func newConnPool() *connPool {
	return &connPool{idle: make(map[string]*pooledConn)}
}

// get removes and returns the host's idle session (nil if none). The
// caller owns the session until it puts it back or closes it.
func (p *connPool) get(hostID string) *pooledConn {
	p.mu.Lock()
	defer p.mu.Unlock()
	pc := p.idle[hostID]
	delete(p.idle, hostID)
	return pc
}

// put parks a healthy session for the next round. If the pool is closed
// (or the host somehow already has an idle session), the newcomer is
// retired with a clean bye instead.
func (p *connPool) put(hostID string, pc *pooledConn) {
	p.mu.Lock()
	if p.closed || p.idle[hostID] != nil {
		p.mu.Unlock()
		retire(pc)
		return
	}
	p.idle[hostID] = pc
	p.mu.Unlock()
}

// size reports the idle sessions currently parked.
func (p *connPool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

// close retires every idle session and refuses future parking. Each
// retirement sends a best-effort bye first, so agents whose transports
// still work see a clean end of session rather than a torn connection.
func (p *connPool) close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = make(map[string]*pooledConn)
	p.closed = true
	p.mu.Unlock()
	for _, pc := range idle {
		retire(pc)
	}
}

// retire ends a session: best-effort bye, then transport teardown.
func retire(pc *pooledConn) {
	_ = pc.sess.Send(ftBye, nil)
	_ = pc.conn.Close()
}

// ping round-trips a keepalive probe on a session. Any response frame
// proves the far side is alive and reading; only ftPong proves it is
// also protocol-current, so anything else is an error and the session
// is retired rather than trusted with a round.
func ping(sess *wire.Session) error {
	if err := sess.Send(ftPing, nil); err != nil {
		return err
	}
	ft, _, err := sess.Recv()
	if err != nil {
		return err
	}
	if ft != ftPong {
		return fmt.Errorf("monitor: ping answered with frame %d, want pong", ft)
	}
	return nil
}
