package monitor

import (
	"strings"
	"testing"
	"time"
)

const sampleLedger = `2010-02-19T12:10:00Z OK d41d8cd98f00b204e9800998ecf8427e
2010-02-19T12:20:00Z OK d41d8cd98f00b204e9800998ecf8427e
2010-02-19T12:30:00Z BAD 900150983cd24fb0d6963f7d28e17f72 (bad blocks [3] of 20)
2010-02-19T12:40:00Z OK d41d8cd98f00b204e9800998ecf8427e
`

func TestParseLedger(t *testing.T) {
	sum, err := ParseLedger([]byte(sampleLedger))
	if err != nil {
		t.Fatal(err)
	}
	if sum.OK != 3 || sum.Bad != 1 || sum.Errors != 0 {
		t.Errorf("counts %+v", sum)
	}
	if sum.Total() != 4 {
		t.Errorf("total %d", sum.Total())
	}
	wantFirst := time.Date(2010, 2, 19, 12, 10, 0, 0, time.UTC)
	wantLast := time.Date(2010, 2, 19, 12, 40, 0, 0, time.UTC)
	if !sum.FirstAt.Equal(wantFirst) || !sum.LastAt.Equal(wantLast) {
		t.Errorf("bounds %v .. %v", sum.FirstAt, sum.LastAt)
	}
}

func TestParseLedgerEmpty(t *testing.T) {
	sum, err := ParseLedger(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total() != 0 {
		t.Errorf("empty ledger total %d", sum.Total())
	}
}

func TestParseLedgerErrorLines(t *testing.T) {
	sum, err := ParseLedger([]byte("ERROR pack failed: boom\n" + sampleLedger))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 1 || sum.OK != 3 {
		t.Errorf("counts %+v", sum)
	}
}

func TestParseLedgerRejectsMalformed(t *testing.T) {
	bad := []string{
		"not a ledger line\n",
		"2010-02-19T12:10:00Z MAYBE d41d8cd98f00b204e9800998ecf8427e\n",
		"yesterday OK d41d8cd98f00b204e9800998ecf8427e\n",
		"2010-02-19T12:10:00Z OK shorthash\n",
	}
	for _, in := range bad {
		if _, err := ParseLedger([]byte(in)); err == nil {
			t.Errorf("malformed ledger %q accepted", strings.TrimSpace(in))
		}
	}
}
