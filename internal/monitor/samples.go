package monitor

import (
	"bytes"
	"strconv"
	"sync"
	"time"

	"frostlab/internal/tsdb"
)

// SampleDB is the monitoring host's parsed-sample plane: every numeric
// reading the mirrored logs carry, stored compressed in an embedded
// internal/tsdb store instead of living only as raw log bytes in the
// mirror maps. The paper kept a whole winter of tent/intake/outlet
// readings; at fleet scale the raw mirrors cannot hold that history, but
// a few compressed bits per sample can — and once the samples live here,
// the raw mirror becomes a bounded working set (see Collector.SetRetention).
//
// Series are named "<hostID>/<key>": the host that produced the reading
// and the key of the "key=value" token on the log line.
type SampleDB struct {
	store *tsdb.Store

	mu sync.Mutex
	// tails hold incomplete trailing lines per host/file until the next
	// ingest completes them.
	tails map[string][]byte
	// dropped counts samples rejected by the store (out-of-order
	// timestamps after an agent restart, typically).
	dropped int64
}

// NewSampleDB returns an empty sample plane.
func NewSampleDB() *SampleDB {
	return &SampleDB{store: tsdb.NewStore(0), tails: make(map[string][]byte)}
}

// Store exposes the underlying tsdb store for queries and checkpoints.
func (db *SampleDB) Store() *tsdb.Store { return db.store }

// Dropped returns how many parsed samples the store rejected.
func (db *SampleDB) Dropped() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.dropped
}

// Ingest parses the bytes newly appended to one mirrored file and appends
// every numeric sample to the store. Chunks may end mid-line; the
// fragment is buffered and completed by the next ingest. It returns the
// number of samples stored.
func (db *SampleDB) Ingest(hostID, file string, chunk []byte) int {
	if len(chunk) == 0 {
		return 0
	}
	key := hostID + "\x00" + file
	db.mu.Lock()
	if tail := db.tails[key]; len(tail) > 0 {
		chunk = append(append([]byte(nil), tail...), chunk...)
		db.tails[key] = nil
	}
	if last := bytes.LastIndexByte(chunk, '\n'); last < 0 {
		db.tails[key] = append(db.tails[key], chunk...)
		db.mu.Unlock()
		return 0
	} else if last+1 < len(chunk) {
		db.tails[key] = append([]byte(nil), chunk[last+1:]...)
		chunk = chunk[:last+1]
	}
	db.mu.Unlock()

	stored := 0
	ParseSamples(hostID, chunk, func(series string, t int64, v float64) {
		if err := db.store.Append(series, t, v); err != nil {
			db.mu.Lock()
			db.dropped++
			db.mu.Unlock()
			return
		}
		stored++
	})
	return stored
}

// Replay re-parses a complete mirrored file and stores only the samples
// newer than each series' last stored timestamp. It is the resync path —
// after a daemon restart the collector has no byte baseline to cut an
// appended suffix from, so it replays the whole mirror and lets the
// timestamps dedupe. Replayed duplicates are skipped silently, not
// counted as drops.
func (db *SampleDB) Replay(hostID, file string, data []byte) int {
	key := hostID + "\x00" + file
	db.mu.Lock()
	// The replayed file supersedes any buffered fragment; its own
	// trailing partial line is buffered for the next appended chunk.
	db.tails[key] = nil
	if last := bytes.LastIndexByte(data, '\n'); last < 0 {
		db.tails[key] = append([]byte(nil), data...)
		data = nil
	} else if last+1 < len(data) {
		db.tails[key] = append([]byte(nil), data[last+1:]...)
		data = data[:last+1]
	}
	db.mu.Unlock()

	lastT := make(map[string]int64)
	stored := 0
	ParseSamples(hostID, data, func(series string, t int64, v float64) {
		last, ok := lastT[series]
		if !ok {
			last = minInt64
			if info, exists := db.store.Info(series); exists {
				last = info.MaxTime
			}
		}
		if ok || last != minInt64 {
			if t <= last {
				lastT[series] = last
				return
			}
		}
		if err := db.store.Append(series, t, v); err != nil {
			db.mu.Lock()
			db.dropped++
			db.mu.Unlock()
			return
		}
		lastT[series] = t
		stored++
	})
	return stored
}

const minInt64 = -1 << 63

// ParseSamples scans log lines of the shape the node agents emit —
//
//	2010-02-19T12:10:00Z cpu=-4.1 disk0=8.0
//
// an RFC3339 timestamp followed by whitespace-separated key=value tokens
// — and calls emit for every value that parses as a float. Non-numeric
// tokens ("cpu=ERR chip not detected") and unparsable lines are skipped:
// the mirror keeps the raw text, this plane only wants the numbers. It is
// exported so tests and offline tooling can replay raw mirrors through
// the exact parser the live ingest path uses.
func ParseSamples(hostID string, data []byte, emit func(series string, t int64, v float64)) {
	for len(data) > 0 {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		sp := bytes.IndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		at, err := time.Parse(time.RFC3339, string(line[:sp]))
		if err != nil {
			continue
		}
		t := at.UnixNano()
		rest := line[sp+1:]
		for len(rest) > 0 {
			tok := rest
			if i := bytes.IndexByte(rest, ' '); i >= 0 {
				tok, rest = rest[:i], rest[i+1:]
			} else {
				rest = nil
			}
			eq := bytes.IndexByte(tok, '=')
			if eq <= 0 || eq == len(tok)-1 {
				continue
			}
			v, err := strconv.ParseFloat(string(tok[eq+1:]), 64)
			if err != nil {
				continue
			}
			emit(hostID+"/"+string(tok[:eq]), t, v)
		}
	}
}
