package sensors

import (
	"errors"
	"math"
	"testing"
	"time"

	"frostlab/internal/simkernel"
	"frostlab/internal/units"
)

var t0 = time.Date(2010, time.February, 19, 12, 0, 0, 0, time.UTC)

// susceptibleChip returns a chip guaranteed susceptible by construction.
func susceptibleChip(t *testing.T) *Chip {
	t.Helper()
	rng := simkernel.NewRNG("chips")
	c := NewChip(DefaultChipConfig(), rng, "01", 1)
	if !c.Susceptible() {
		t.Fatal("susceptibility 1 produced non-susceptible chip")
	}
	return c
}

func TestChipHealthyReads(t *testing.T) {
	c := susceptibleChip(t)
	var maxErr float64
	for i := 0; i < 500; i++ {
		got, err := c.Read(-4)
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(float64(got + 4)); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 2.5 {
		t.Errorf("healthy chip error up to %.2f°C, want small noise", maxErr)
	}
	if maxErr == 0 {
		t.Error("chip reads are noiseless; expected sensor noise")
	}
}

func TestChipGlitchStateMachine(t *testing.T) {
	// Reproduce §4.2.1 end to end: cold exposure -> −111 °C readings ->
	// redetect kills the chip -> warm reboot revives it.
	c := susceptibleChip(t)
	cfg := DefaultChipConfig()

	// Sub-threshold exposure: not enough yet.
	c.Observe(cfg.GlitchAfter/2, -10)
	if c.State() != ChipHealthy {
		t.Fatalf("state %v after half exposure, want healthy", c.State())
	}
	// Warm operation must not accumulate.
	c.Observe(cfg.GlitchAfter*2, 20)
	if c.State() != ChipHealthy {
		t.Fatalf("warm operation glitched the chip")
	}
	// Finish the cold exposure.
	c.Observe(cfg.GlitchAfter/2, -10)
	if c.State() != ChipGlitching {
		t.Fatalf("state %v after full exposure, want glitching", c.State())
	}
	got, err := c.Read(-4)
	if err != nil {
		t.Fatal(err)
	}
	if got != BogusReading {
		t.Errorf("glitching chip read %v, want %v", got, BogusReading)
	}
	// "we tried to redetect the sensor chip ... the opposite resulted"
	c.Redetect()
	if c.State() != ChipUndetected {
		t.Fatalf("state %v after redetect, want undetected", c.State())
	}
	if _, err := c.Read(-4); !errors.Is(err, ErrChipNotDetected) {
		t.Errorf("undetected chip read error %v", err)
	}
	// "we risked a warm system reboot, which caused the sensor chip to
	// work again"
	c.WarmReboot()
	if c.State() != ChipHealthy {
		t.Fatalf("state %v after warm reboot, want healthy", c.State())
	}
	if _, err := c.Read(-4); err != nil {
		t.Errorf("revived chip read failed: %v", err)
	}
}

func TestChipNonSusceptibleNeverGlitches(t *testing.T) {
	rng := simkernel.NewRNG("never")
	c := NewChip(DefaultChipConfig(), rng, "02", 0)
	if c.Susceptible() {
		t.Fatal("susceptibility 0 produced susceptible chip")
	}
	c.Observe(1000*time.Hour, -30)
	if c.State() != ChipHealthy {
		t.Errorf("non-susceptible chip glitched")
	}
}

func TestChipRedetectHarmlessWhenHealthy(t *testing.T) {
	c := susceptibleChip(t)
	c.Redetect()
	if c.State() != ChipHealthy {
		t.Error("redetect broke a healthy chip")
	}
}

func TestChipStateString(t *testing.T) {
	if ChipHealthy.String() != "healthy" || ChipGlitching.String() != "glitching" || ChipUndetected.String() != "undetected" {
		t.Error("state names wrong")
	}
	if ChipState(9).String() == "" {
		t.Error("unknown state unformatted")
	}
}

type fixedEnv struct {
	temp units.Celsius
	rh   units.RelHumidity
}

func (f fixedEnv) Air() (units.Celsius, units.RelHumidity) { return f.temp, f.rh }

func TestLascarSamplesWithinDatasheet(t *testing.T) {
	rng := simkernel.NewRNG("lascar1")
	env := fixedEnv{temp: -8, rh: 78}
	l, err := NewLascar(ELUSB2Spec, rng, env, 5*time.Minute, t0)
	if err != nil {
		t.Fatal(err)
	}
	sched := simkernel.NewScheduler(t0)
	if err := l.Install(sched, t0); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(t0.Add(24 * time.Hour))
	if l.Temp.Len() < 280 {
		t.Fatalf("only %d samples in 24h at 5min", l.Temp.Len())
	}
	sum, err := l.Temp.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.Mean-(-8)) > float64(ELUSB2Spec.TempTypical) {
		t.Errorf("mean %v beyond typical datasheet error of true -8", sum.Mean)
	}
	if sum.Min < -8-float64(ELUSB2Spec.TempMax) || sum.Max > -8+float64(ELUSB2Spec.TempMax) {
		t.Errorf("readings [%v, %v] beyond max datasheet error", sum.Min, sum.Max)
	}
	rsum, err := l.RH.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rsum.Mean-78) > float64(ELUSB2Spec.RHTypical) {
		t.Errorf("RH mean %v beyond typical datasheet error of 78", rsum.Mean)
	}
}

func TestLascarDelayedArrival(t *testing.T) {
	// The logger "arrived late": no samples may exist before the delivery
	// date, producing the leading gap of Figs. 3/4.
	rng := simkernel.NewRNG("lascar2")
	arrive := t0.AddDate(0, 0, 14)
	l, err := NewLascar(ELUSB2Spec, rng, fixedEnv{temp: 0, rh: 50}, 5*time.Minute, arrive)
	if err != nil {
		t.Fatal(err)
	}
	sched := simkernel.NewScheduler(t0)
	if err := l.Install(sched, t0); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(arrive.Add(time.Hour))
	first, err := l.Temp.First()
	if err != nil {
		t.Fatal("no samples after arrival")
	}
	if first.At.Before(arrive) {
		t.Errorf("sample at %v before delivery %v", first.At, arrive)
	}
}

func TestLascarReadoutInsertsOutliers(t *testing.T) {
	rng := simkernel.NewRNG("lascar3")
	l, err := NewLascar(ELUSB2Spec, rng, fixedEnv{temp: -9, rh: 80}, 5*time.Minute, t0)
	if err != nil {
		t.Fatal(err)
	}
	sched := simkernel.NewScheduler(t0)
	if err := l.Install(sched, t0); err != nil {
		t.Fatal(err)
	}
	// Carry the logger indoors for 20 minutes mid-run.
	if _, err := sched.At(t0.Add(6*time.Hour), func(now time.Time) {
		l.BeginReadout(now.Add(20 * time.Minute))
	}); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(t0.Add(12 * time.Hour))
	sum, err := l.Temp.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Max < 15 {
		t.Fatalf("max %v: no indoor outliers recorded", sum.Max)
	}
	// The paper removed these outliers from the graphs; CleanedSeries must
	// drop them.
	clean, _ := l.CleanedSeries()
	csum, err := clean.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if csum.Max > 0 {
		t.Errorf("cleaned series still has max %v; outliers not removed", csum.Max)
	}
	if clean.Len() >= l.Temp.Len() {
		t.Errorf("cleaning removed nothing: %d vs %d", clean.Len(), l.Temp.Len())
	}
}

func TestLascarValidation(t *testing.T) {
	rng := simkernel.NewRNG("x")
	if _, err := NewLascar(ELUSB2Spec, rng, fixedEnv{}, 0, t0); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewLascar(ELUSB2Spec, rng, nil, time.Minute, t0); err == nil {
		t.Error("nil environment accepted")
	}
}

func TestDiskHealthyPassesLongTest(t *testing.T) {
	rng := simkernel.NewRNG("disks")
	d := NewDisk(rng, "01", 0)
	for i := 0; i < 90*24; i++ { // three months of hours at benign temp
		d.Observe(time.Hour, 30)
	}
	if !d.LongTest() {
		t.Error("healthy drive failed its long test; §4.2.2 says they passed")
	}
	hours, err := d.Read(AttrPowerOnHours)
	if err != nil {
		t.Fatal(err)
	}
	if hours != 90*24 {
		t.Errorf("power-on hours %d, want %d", hours, 90*24)
	}
}

func TestDiskHotRunsDegradeFaster(t *testing.T) {
	// Expected reallocation rate is temperature-dependent; compare many
	// drive-years at benign vs hot temperature.
	rng := simkernel.NewRNG("hotdisks")
	benign, hot := 0, 0
	for i := 0; i < 60; i++ {
		b := NewDisk(rng, "b", i)
		h := NewDisk(rng, "h", i)
		for j := 0; j < 365*24; j++ {
			b.Observe(time.Hour, 30)
			h.Observe(time.Hour, 60)
		}
		rb, _ := b.Read(AttrReallocatedSectors)
		rh, _ := h.Read(AttrReallocatedSectors)
		benign += rb
		hot += rh
	}
	if hot <= benign {
		t.Errorf("hot drives reallocated %d sectors vs %d benign; want more", hot, benign)
	}
}

func TestDiskFail(t *testing.T) {
	rng := simkernel.NewRNG("fail")
	d := NewDisk(rng, "01", 1)
	d.Fail()
	if !d.Failed() {
		t.Error("Fail did not stick")
	}
	if d.LongTest() {
		t.Error("failed drive passed long test")
	}
	before, _ := d.Read(AttrPowerOnHours)
	d.Observe(time.Hour, 30)
	after, _ := d.Read(AttrPowerOnHours)
	if after != before {
		t.Error("dead drive accumulated power-on hours")
	}
}

func TestDiskUnknownAttribute(t *testing.T) {
	rng := simkernel.NewRNG("attr")
	d := NewDisk(rng, "01", 0)
	if _, err := d.Read(SMARTAttr(1)); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestDiskTemperatureAttribute(t *testing.T) {
	rng := simkernel.NewRNG("temp")
	d := NewDisk(rng, "01", 0)
	d.Observe(time.Minute, -7)
	got, err := d.Read(AttrTemperature)
	if err != nil {
		t.Fatal(err)
	}
	if got != -7 {
		t.Errorf("temperature attribute %d, want -7", got)
	}
}

func TestPowerMeterAccuracy(t *testing.T) {
	rng := simkernel.NewRNG("meter")
	m := NewPowerMeter(rng, "tent")
	var worst float64
	for i := 0; i < 1000; i++ {
		r := m.Observe(time.Minute, 1400)
		if rel := math.Abs(float64(r)-1400) / 1400; rel > worst {
			worst = rel
		}
	}
	if worst > 0.1 {
		t.Errorf("meter error up to %.1f%%, want a few percent", worst*100)
	}
	if worst == 0 {
		t.Error("meter is noiseless")
	}
	// Energy integrates the truth: 1000 minutes at 1.4 kW = 23.33 kWh.
	want := 1400.0 / 1000 * (1000.0 / 60)
	if got := float64(m.Energy()); math.Abs(got-want) > 0.01 {
		t.Errorf("energy %v kWh, want %v", got, want)
	}
	if m.Last() == 0 {
		t.Error("Last not recorded")
	}
}

func BenchmarkChipRead(b *testing.B) {
	rng := simkernel.NewRNG("bench")
	c := NewChip(DefaultChipConfig(), rng, "01", 1)
	for i := 0; i < b.N; i++ {
		_, _ = c.Read(-4)
	}
}

func BenchmarkLascarSample(b *testing.B) {
	rng := simkernel.NewRNG("bench")
	l, err := NewLascar(ELUSB2Spec, rng, fixedEnv{temp: -9, rh: 80}, 5*time.Minute, t0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		l.Sample(t0.Add(time.Duration(i) * 5 * time.Minute))
	}
}

func BenchmarkDiskObserve(b *testing.B) {
	rng := simkernel.NewRNG("bench")
	d := NewDisk(rng, "01", 0)
	for i := 0; i < b.N; i++ {
		d.Observe(time.Minute, 25)
	}
}
