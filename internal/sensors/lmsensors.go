// Package sensors emulates the instruments of the experiment: the
// motherboard sensor chips read through Linux' lm-sensors package, the
// Lascar EL-USB-2-LCD temperature/humidity data logger inside the tent,
// hard drive S.M.A.R.T. self-monitoring, and the Technoline Cost Control
// power meter.
//
// The emulations reproduce the instruments' documented error bounds and —
// importantly for reproducing the paper — their *failure behaviours*:
// §4.2.1's sensor chip that reported −111 °C after extreme cold, stopped
// being detected after a redetection attempt, and recovered only after a
// warm reboot; and the Lascar logger whose manual USB readout trips insert
// indoor-temperature outliers into the record.
package sensors

import (
	"errors"
	"fmt"
	"time"

	"frostlab/internal/simkernel"
	"frostlab/internal/units"
)

// ChipState is the lm-sensors chip's health state.
type ChipState int

// The §4.2.1 sensor chip state machine.
const (
	// ChipHealthy: readings are accurate within noise.
	ChipHealthy ChipState = iota
	// ChipGlitching: the chip reports "clearly erroneous readings of
	// −111 °C" after operating in extreme cold.
	ChipGlitching
	// ChipUndetected: a redetection attempt made the chip "cease to be
	// detected at all"; reads fail.
	ChipUndetected
)

// String names the state.
func (s ChipState) String() string {
	switch s {
	case ChipHealthy:
		return "healthy"
	case ChipGlitching:
		return "glitching"
	case ChipUndetected:
		return "undetected"
	default:
		return fmt.Sprintf("ChipState(%d)", int(s))
	}
}

// ErrChipNotDetected is returned by Read while the chip is undetected.
var ErrChipNotDetected = errors.New("sensors: chip not detected")

// BogusReading is the impossible value the failed chip reported (§4.2.1).
const BogusReading units.Celsius = -111

// ChipConfig tunes the sensor chip emulation.
type ChipConfig struct {
	// NoiseSigma is the 1-sigma read noise, °C.
	NoiseSigma float64
	// GlitchBelow is the chip temperature below which cold exposure
	// accumulates toward a glitch.
	GlitchBelow units.Celsius
	// GlitchAfter is how much cumulative exposure below GlitchBelow
	// triggers the glitching state.
	GlitchAfter time.Duration
}

// DefaultChipConfig reproduces §4.2.1: the chip began misbehaving after
// "the initial period in the most extreme cold", having reported CPU
// temperatures below −4 °C while outside air reached −22 °C.
func DefaultChipConfig() ChipConfig {
	return ChipConfig{
		NoiseSigma:  0.5,
		GlitchBelow: -1,
		GlitchAfter: 10 * time.Hour,
	}
}

// Chip emulates one motherboard sensor chip as read via lm-sensors.
type Chip struct {
	cfg    ChipConfig
	rng    *simkernel.RNG
	stream string
	// noiseStream is the precomputed stream+"/noise" name, so the per-read
	// noise draw on the hot path concatenates nothing.
	noiseStream string
	state       ChipState
	coldTime    time.Duration
	// susceptible chips (a per-individual lottery) are the only ones that
	// ever glitch; the paper saw exactly one chip fail across 19 hosts.
	susceptible bool
}

// NewChip returns a chip emulation. susceptibility controls the fraction
// of individual chips that can develop the cold glitch at all.
func NewChip(cfg ChipConfig, rng *simkernel.RNG, hostID string, susceptibility float64) *Chip {
	stream := "chip/" + hostID
	return &Chip{
		cfg:         cfg,
		rng:         rng,
		stream:      stream,
		noiseStream: stream + "/noise",
		susceptible: rng.Bernoulli(stream+"/lottery", susceptibility),
	}
}

// State returns the chip's current health state.
func (c *Chip) State() ChipState { return c.state }

// Susceptible reports whether this individual can ever develop the glitch.
func (c *Chip) Susceptible() bool { return c.susceptible }

// Observe advances the chip's internal condition by dt at the given true
// die temperature. Cold exposure accumulates; warm operation does not heal
// a glitching chip (only a warm reboot does).
func (c *Chip) Observe(dt time.Duration, trueTemp units.Celsius) {
	if c.state != ChipHealthy || !c.susceptible {
		return
	}
	if trueTemp < c.cfg.GlitchBelow {
		c.coldTime += dt
		if c.coldTime >= c.cfg.GlitchAfter {
			c.state = ChipGlitching
		}
	}
}

// Read returns the chip's reported CPU temperature for the given true die
// temperature. A glitching chip returns the bogus −111 °C; an undetected
// chip returns ErrChipNotDetected.
func (c *Chip) Read(trueTemp units.Celsius) (units.Celsius, error) {
	switch c.state {
	case ChipUndetected:
		return 0, ErrChipNotDetected
	case ChipGlitching:
		return BogusReading, nil
	default:
		noise := c.rng.Normal(c.noiseStream, 0, c.cfg.NoiseSigma)
		return trueTemp + units.Celsius(noise), nil
	}
}

// Redetect models re-probing the chip with hopes of resetting it. On a
// glitching chip this backfires exactly as in the paper: "the opposite
// resulted, and the sensor chip ceased to be detected at all". On a
// healthy chip it is harmless.
func (c *Chip) Redetect() {
	if c.state == ChipGlitching {
		c.state = ChipUndetected
	}
}

// WarmReboot models the risked warm system reboot "which caused the sensor
// chip to work again". It clears any failure state and the cold-exposure
// accumulator.
func (c *Chip) WarmReboot() {
	c.state = ChipHealthy
	c.coldTime = 0
}
