package sensors

import (
	"fmt"
	"time"

	"frostlab/internal/simkernel"
	"frostlab/internal/timeseries"
	"frostlab/internal/units"
)

// LascarSpec holds the datasheet error bounds of the Lascar EL-USB-2-LCD
// data logger used inside the tent (§3.3): ±0.5 °C, ±3.0 %RH typical;
// ±2 °C, ±6.0 %RH maximum.
type LascarSpec struct {
	TempTypical units.Celsius
	TempMax     units.Celsius
	RHTypical   units.RelHumidity
	RHMax       units.RelHumidity
}

// ELUSB2Spec is the datasheet of the unit the paper used.
var ELUSB2Spec = LascarSpec{TempTypical: 0.5, TempMax: 2, RHTypical: 3, RHMax: 6}

// Environment is the air the logger sits in; satisfied by
// thermal.Environment.
type Environment interface {
	Air() (units.Celsius, units.RelHumidity)
}

// Lascar emulates the data logger. It samples the environment it sits in
// at a fixed interval, applying per-unit calibration offset plus read
// noise, both within the datasheet bounds. A Readout models the manual
// USB readout trip: the logger is carried indoors, records a few indoor
// samples (the outliers the paper removed from its graphs), and is brought
// back.
type Lascar struct {
	spec     LascarSpec
	rng      *simkernel.RNG
	env      Environment
	interval time.Duration

	// ArrivesAt models the unit's delayed delivery: samples before this
	// instant are never taken (the missing early data of Fig. 3/4).
	arrivesAt time.Time

	calTemp units.Celsius     // per-unit calibration offset
	calRH   units.RelHumidity // per-unit calibration offset

	indoorUntil time.Time

	Temp *timeseries.Series
	RH   *timeseries.Series
}

// IndoorConditions is what the logger records while carried to the office
// for readout.
var IndoorConditions = struct {
	Temp units.Celsius
	RH   units.RelHumidity
}{Temp: 21.5, RH: 30}

// NewLascar returns a logger sampling env every interval, delivered (and
// deployed) at arrivesAt. The per-unit calibration offsets are drawn once,
// uniformly within the typical datasheet bounds.
func NewLascar(spec LascarSpec, rng *simkernel.RNG, env Environment, interval time.Duration, arrivesAt time.Time) (*Lascar, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("sensors: lascar needs a positive interval, got %v", interval)
	}
	if env == nil {
		return nil, fmt.Errorf("sensors: lascar needs an environment")
	}
	return &Lascar{
		spec:      spec,
		rng:       rng,
		env:       env,
		interval:  interval,
		arrivesAt: arrivesAt,
		calTemp:   units.Celsius(rng.Uniform("lascar/cal_t", -float64(spec.TempTypical), float64(spec.TempTypical))),
		calRH:     units.RelHumidity(rng.Uniform("lascar/cal_rh", -float64(spec.RHTypical), float64(spec.RHTypical))),
		Temp:      timeseries.New("tent_inside_temp", "°C"),
		RH:        timeseries.New("tent_inside_rh", "%RH"),
	}, nil
}

// ArrivesAt returns the delivery instant.
func (l *Lascar) ArrivesAt() time.Time { return l.arrivesAt }

// Install registers the logger's sampling task on the scheduler. Sampling
// starts at the later of start and the delivery date.
func (l *Lascar) Install(sched *simkernel.Scheduler, start time.Time) error {
	if start.Before(l.arrivesAt) {
		start = l.arrivesAt
	}
	_, err := sched.Periodic(start, l.interval, nil, l.Sample)
	return err
}

// BeginReadout marks the logger as carried indoors for USB readout until
// the given instant. Samples taken in between record office air — the
// outliers §3.3 says were removed from the graphs.
func (l *Lascar) BeginReadout(until time.Time) { l.indoorUntil = until }

// Sample takes one reading at the given simulated instant.
func (l *Lascar) Sample(now time.Time) {
	if now.Before(l.arrivesAt) {
		return
	}
	var temp units.Celsius
	var rh units.RelHumidity
	if now.Before(l.indoorUntil) {
		temp, rh = IndoorConditions.Temp, IndoorConditions.RH
	} else {
		temp, rh = l.env.Air()
	}
	// Read noise: a third of the typical bound as 1-sigma keeps ~99.7% of
	// reads within datasheet-typical error.
	temp += l.calTemp + units.Celsius(l.rng.Normal("lascar/noise_t", 0, float64(l.spec.TempTypical)/3))
	rh = (rh + l.calRH + units.RelHumidity(l.rng.Normal("lascar/noise_rh", 0, float64(l.spec.RHTypical)/3))).Clamp()
	_ = l.Temp.Append(now, float64(temp))
	_ = l.RH.Append(now, float64(rh))
}

// CleanedSeries returns the logger's temperature and humidity records with
// readout outliers removed, the way the paper prepared Figs. 3 and 4.
func (l *Lascar) CleanedSeries() (temp, rh *timeseries.Series) {
	t, _ := l.Temp.RemoveOutliers(6, 4)
	h, _ := l.RH.RemoveOutliers(6, 4)
	return t, h
}
