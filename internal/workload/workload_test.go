package workload

import (
	"bytes"
	"crypto/md5"
	"testing"
	"testing/quick"
	"time"

	"frostlab/internal/simkernel"
)

var t0 = time.Date(2010, time.February, 19, 12, 0, 0, 0, time.UTC)

func smallTree(t testing.TB) *SourceTree {
	t.Helper()
	tree, err := GenerateTree("kernel-2.6", 40, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestGenerateTreeDeterministic(t *testing.T) {
	a, err := GenerateTree("seed", 20, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTree("seed", 20, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumFiles() != b.NumFiles() || a.TotalBytes() != b.TotalBytes() {
		t.Fatal("same seed produced different trees")
	}
	for i := range a.Files() {
		fa, fb := a.Files()[i], b.Files()[i]
		if fa.Path != fb.Path || !bytes.Equal(fa.Data, fb.Data) {
			t.Fatalf("file %d differs between identical seeds", i)
		}
	}
	c, err := GenerateTree("other", 20, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if ares, cres := mustPack(t, a), mustPack(t, c); ares.MD5 == cres.MD5 {
		t.Error("different seeds produced identical archives")
	}
}

func TestGenerateTreeValidation(t *testing.T) {
	if _, err := GenerateTree("s", 0, 1000); err == nil {
		t.Error("zero files accepted")
	}
	if _, err := GenerateTree("s", 10, 0); err == nil {
		t.Error("zero bytes accepted")
	}
	if _, err := GenerateTree("s", 100, 10); err == nil {
		t.Error("more files than bytes accepted")
	}
}

func TestGenerateTreeShape(t *testing.T) {
	tree := smallTree(t)
	if tree.NumFiles() != 40 {
		t.Errorf("files %d, want 40", tree.NumFiles())
	}
	total := tree.TotalBytes()
	if total < 128<<10 || total > 512<<10 {
		t.Errorf("total bytes %d not near requested 256KiB", total)
	}
	// Paths must be sorted and kernel-ish.
	files := tree.Files()
	for i := 1; i < len(files); i++ {
		if files[i-1].Path >= files[i].Path {
			t.Fatal("files not sorted by path")
		}
	}
}

func mustPack(t testing.TB, tree *SourceTree) ArchiveResult {
	t.Helper()
	_, res, err := Pack(tree, DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPackDeterministic(t *testing.T) {
	tree := smallTree(t)
	a, b := mustPack(t, tree), mustPack(t, tree)
	if a.MD5 != b.MD5 {
		t.Error("same tree packed to different digests")
	}
	if a.Blocks != b.Blocks || a.CompressedBytes != b.CompressedBytes {
		t.Error("pack not bit-reproducible")
	}
}

func TestPackCompresses(t *testing.T) {
	tree := smallTree(t)
	res := mustPack(t, tree)
	if res.CompressedBytes >= res.TarBytes {
		t.Errorf("no compression: %d -> %d", res.TarBytes, res.CompressedBytes)
	}
	// Source-code-like text should compress at least 2.5x.
	if ratio := float64(res.TarBytes) / float64(res.CompressedBytes); ratio < 2.5 {
		t.Errorf("compression ratio %.2f, want source-like >= 2.5", ratio)
	}
}

func TestBlockCountMatchesBlockSize(t *testing.T) {
	tree := smallTree(t)
	var tarBuf bytes.Buffer
	if err := WriteTar(&tarBuf, tree); err != nil {
		t.Fatal(err)
	}
	tarLen := tarBuf.Len()
	blockSize := 32 << 10
	var out bytes.Buffer
	blocks, err := CompressFBZ(&out, &tarBuf, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	want := (tarLen + blockSize - 1) / blockSize
	if blocks != want {
		t.Errorf("blocks %d, want ceil(%d/%d) = %d", blocks, tarLen, blockSize, want)
	}
}

func TestCompressFBZValidation(t *testing.T) {
	var out bytes.Buffer
	if _, err := CompressFBZ(&out, bytes.NewReader([]byte("x")), 0); err == nil {
		t.Error("zero block size accepted")
	}
}

func TestFBZRoundTrip(t *testing.T) {
	tree := smallTree(t)
	var tarBuf bytes.Buffer
	if err := WriteTar(&tarBuf, tree); err != nil {
		t.Fatal(err)
	}
	original := append([]byte(nil), tarBuf.Bytes()...)
	var comp bytes.Buffer
	if _, err := CompressFBZ(&comp, &tarBuf, 16<<10); err != nil {
		t.Fatal(err)
	}
	var back bytes.Buffer
	if err := DecompressFBZ(&back, bytes.NewReader(comp.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Bytes(), original) {
		t.Error("FBZ round trip lost data")
	}
}

func TestFBZRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		var comp bytes.Buffer
		if _, err := CompressFBZ(&comp, bytes.NewReader(data), 1024); err != nil {
			return false
		}
		var back bytes.Buffer
		if err := DecompressFBZ(&back, bytes.NewReader(comp.Bytes())); err != nil {
			return false
		}
		return bytes.Equal(back.Bytes(), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestScanRejectsNonFBZ(t *testing.T) {
	if _, err := ScanFBZ(bytes.NewReader([]byte("definitely not an archive"))); err == nil {
		t.Error("non-FBZ accepted")
	}
	if _, err := ScanFBZ(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestCorruptionDetectedInExactlyOneBlock(t *testing.T) {
	// The §4.2.2 forensics: one flipped bit -> hash mismatch -> recovery
	// scan finds exactly one bad block out of many.
	tree := smallTree(t)
	archive, res, err := Pack(tree, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks < 10 {
		t.Fatalf("want a multi-block archive, got %d blocks", res.Blocks)
	}
	clean := md5.Sum(archive)
	target := res.Blocks / 2
	calls := 0
	if err := CorruptBit(archive, target, func(n int) int { calls++; return n / 3 }); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("pick called %d times, want 2 (byte + bit)", calls)
	}
	if md5.Sum(archive) == clean {
		t.Fatal("bit flip did not change the digest")
	}
	blocks, err := ScanFBZ(bytes.NewReader(archive))
	if err != nil {
		t.Fatal(err)
	}
	var bad []int
	for _, b := range blocks {
		if !b.OK {
			bad = append(bad, b.Index)
		}
	}
	if len(bad) != 1 || bad[0] != target {
		t.Errorf("bad blocks %v, want exactly [%d]", bad, target)
	}
	if len(blocks) != res.Blocks {
		t.Errorf("scan saw %d blocks, want %d", len(blocks), res.Blocks)
	}
}

func TestCorruptBitValidation(t *testing.T) {
	tree := smallTree(t)
	archive, res, err := Pack(tree, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	if err := CorruptBit(archive, res.Blocks+5, func(n int) int { return 0 }); err == nil {
		t.Error("out-of-range block accepted")
	}
	if err := CorruptBit([]byte("nope"), 0, func(n int) int { return 0 }); err == nil {
		t.Error("non-FBZ accepted")
	}
}

func newRunner(t testing.TB) *Runner {
	t.Helper()
	rng := simkernel.NewRNG("runner")
	r, err := NewRunner("01", "kernel-2.6", 40, 256<<10, 16<<10, rng)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunnerCleanCycle(t *testing.T) {
	r := newRunner(t)
	res, err := r.RunCycle(t0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Error("clean cycle mismatched the reference hash")
	}
	if res.MD5 != r.Reference() {
		t.Error("clean digest differs from reference")
	}
	if len(res.BadBlocks) != 0 {
		t.Errorf("clean cycle reported bad blocks %v", res.BadBlocks)
	}
	if len(r.StoredArchives()) != 0 {
		t.Error("clean cycle stored its tarball; §3.5 overwrites it")
	}
}

func TestRunnerCorruptCycle(t *testing.T) {
	r := newRunner(t)
	res, err := r.RunCycle(t0, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("corrupt cycle passed verification")
	}
	if len(res.BadBlocks) != 1 {
		t.Errorf("bad blocks %v, want exactly one (§4.2.2)", res.BadBlocks)
	}
	if len(r.StoredArchives()) != 1 {
		t.Error("failing tarball not stored")
	}
	if got := len(r.Results()); got != 1 {
		t.Errorf("results %d", got)
	}
}

func TestRunnerPageAccounting(t *testing.T) {
	r := newRunner(t)
	if r.PagesPerCycle() <= 0 {
		t.Fatal("no page traffic accounted")
	}
	// Pages must cover at least the tar stream twice and archive twice.
	_, res, err := Pack(smallTree(t), 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	want := PagesTouched(res)
	if r.PagesPerCycle() != want {
		t.Errorf("pages %d, want %d", r.PagesPerCycle(), want)
	}
	if want < res.TarBytes/PageSize {
		t.Error("accounting below single-pass traffic")
	}
}

func TestStartFuzzRange(t *testing.T) {
	rng := simkernel.NewRNG("fuzz")
	f := StartFuzz(rng, "01")
	seen := map[time.Duration]bool{}
	for i := 0; i < 2000; i++ {
		d := f()
		if d < 0 || d > MaxStartFuzz {
			t.Fatalf("fuzz %v outside [0, 119s]", d)
		}
		seen[d] = true
	}
	if len(seen) < 60 {
		t.Errorf("only %d distinct fuzz values; want spread over 0..119s", len(seen))
	}
}

func TestRunnerValidation(t *testing.T) {
	rng := simkernel.NewRNG("bad")
	if _, err := NewRunner("01", "s", 0, 1000, 1024, rng); err == nil {
		t.Error("invalid tree accepted")
	}
}

func BenchmarkPack(b *testing.B) {
	tree := smallTree(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Pack(tree, DefaultBlockSize); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanFBZ(b *testing.B) {
	tree := smallTree(b)
	archive, _, err := Pack(tree, 16<<10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ScanFBZ(bytes.NewReader(archive)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunCycle(b *testing.B) {
	rng := simkernel.NewRNG("bench")
	r, err := NewRunner("01", "kernel-2.6", 40, 256<<10, 16<<10, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RunCycle(t0.Add(time.Duration(i)*CyclePeriod), false); err != nil {
			b.Fatal(err)
		}
	}
}
