package workload

import (
	"bytes"
	"crypto/md5"
	"fmt"
	"time"

	"frostlab/internal/simkernel"
)

// CyclePeriod is the paper's workload cadence: "Each host executes its
// synthetic load every 10 minutes."
const CyclePeriod = 10 * time.Minute

// MaxStartFuzz bounds the §3.5 desynchronisation sleep: "each host sleeps
// for 0 to 119 seconds before commencing the archival process".
const MaxStartFuzz = 119 * time.Second

// PageSize is the memory page size used for the §4.2.2 accounting.
const PageSize = 4096

// CycleResult records one synthetic load run on one host.
type CycleResult struct {
	HostID string
	At     time.Time
	// OK reports whether the archive hash matched the reference.
	OK bool
	// MD5 is the computed digest.
	MD5 Digest
	// BadBlocks lists the corrupt block indices found by the recovery
	// scan; only populated when OK is false (the paper only inspected
	// stored failing tarballs).
	BadBlocks []int
	// Blocks is the total compression block count.
	Blocks int
}

// Runner executes the synthetic load for one host. It owns the host's
// source tree and the reference digest "calculated before installation".
type Runner struct {
	hostID    string
	tree      *SourceTree
	blockSize int
	rng       *simkernel.RNG

	reference Digest
	refBlocks int
	pages     int64

	// archive and archiveRes cache the initial pack. The source tree is
	// immutable and Pack is deterministic, so every later cycle would
	// produce these exact bytes; re-running the compressor per cycle only
	// burned time. Corrupting cycles work on a copy.
	archive    []byte
	archiveRes ArchiveResult
	// blockStream and bitStream are the precomputed corruption RNG stream
	// names.
	blockStream string
	bitStream   string

	results []CycleResult
	// storedArchives keeps the failing tarballs, as §3.5 prescribes.
	storedArchives map[string][]byte
}

// PackCache shares generated source trees and their pristine archives
// between runners with the same tree seed and geometry. Basement twins run
// their tent partner's disk image, so within one experiment the same tree
// would otherwise be generated and compressed twice. Not concurrent-safe:
// each experiment (campaign replicate) owns its own cache.
type PackCache struct {
	entries map[packKey]*packEntry
}

type packKey struct {
	seed      string
	files     int
	bytes     int64
	blockSize int
}

type packEntry struct {
	tree    *SourceTree
	archive []byte
	res     ArchiveResult
}

// NewPackCache returns an empty cache.
func NewPackCache() *PackCache {
	return &PackCache{entries: make(map[packKey]*packEntry)}
}

// NewRunner prepares a runner: it generates the host's tree, performs the
// initial pack, and records the reference digest. Identical (seed,
// geometry) requests share one tree and archive; runners never mutate the
// shared bytes (corrupting cycles copy first).
func (c *PackCache) NewRunner(hostID string, treeSeed string, files int, treeBytes int64, blockSize int, rng *simkernel.RNG) (*Runner, error) {
	key := packKey{seed: treeSeed, files: files, bytes: treeBytes, blockSize: blockSize}
	ent, ok := c.entries[key]
	if !ok {
		tree, err := GenerateTree(treeSeed, files, treeBytes)
		if err != nil {
			return nil, err
		}
		archive, res, err := Pack(tree, blockSize)
		if err != nil {
			return nil, fmt.Errorf("workload: initial pack for %s: %w", hostID, err)
		}
		ent = &packEntry{tree: tree, archive: archive, res: res}
		c.entries[key] = ent
	}
	return &Runner{
		hostID:         hostID,
		tree:           ent.tree,
		blockSize:      blockSize,
		rng:            rng,
		reference:      ent.res.MD5,
		refBlocks:      ent.res.Blocks,
		pages:          PagesTouched(ent.res),
		archive:        ent.archive,
		archiveRes:     ent.res,
		blockStream:    "workload/" + hostID + "/block",
		bitStream:      "workload/" + hostID + "/bit",
		storedArchives: make(map[string][]byte),
	}, nil
}

// NewRunner builds a standalone runner with a private cache.
func NewRunner(hostID string, treeSeed string, files int, treeBytes int64, blockSize int, rng *simkernel.RNG) (*Runner, error) {
	return NewPackCache().NewRunner(hostID, treeSeed, files, treeBytes, blockSize, rng)
}

// Reference returns the digest computed at installation.
func (r *Runner) Reference() Digest { return r.reference }

// ReferenceBlocks returns the block count of a clean archive.
func (r *Runner) ReferenceBlocks() int { return r.refBlocks }

// PagesPerCycle returns the §4.2.2-style memory page traffic of one cycle.
func (r *Runner) PagesPerCycle() int64 { return r.pages }

// PagesTouched estimates memory pages read and written by one archival
// cycle the way §4.2.2 does: source bytes are read, the tar stream is
// written and re-read by the compressor, the archive is written and then
// re-read by the hash.
func PagesTouched(res ArchiveResult) int64 {
	traffic := res.TarBytes + // reading sources / writing tar
		res.TarBytes + // compressor reading tar
		res.CompressedBytes + // writing archive
		res.CompressedBytes // md5 reading archive
	return (traffic + PageSize - 1) / PageSize
}

// RunCycle executes one load cycle at the given simulated time. If corrupt
// is true, a single bit of one compression block is flipped before hashing
// — the memory-error mechanism §4.2.2 conjectures. The failing archive is
// stored and scanned for bad blocks.
func (r *Runner) RunCycle(now time.Time, corrupt bool) (CycleResult, error) {
	// The clean pack is cached from installation (the tree never changes);
	// a corrupting cycle flips a bit in its own copy.
	archive, res := r.archive, r.archiveRes
	if corrupt {
		archive = append([]byte(nil), r.archive...)
		block := r.rng.Pick(r.blockStream, res.Blocks)
		if err := CorruptBit(archive, block, func(n int) int {
			return r.rng.Pick(r.bitStream, n)
		}); err != nil {
			return CycleResult{}, err
		}
		res.MD5 = md5.Sum(archive)
	}
	out := CycleResult{
		HostID: r.hostID,
		At:     now,
		OK:     res.MD5 == r.reference,
		MD5:    res.MD5,
		Blocks: res.Blocks,
	}
	if !out.OK {
		// "If the results differ, the packed tarball is stored."
		key := now.UTC().Format(time.RFC3339)
		r.storedArchives[key] = archive
		// bzip2recover-style forensics on the stored archive.
		blocks, err := ScanFBZ(bytes.NewReader(archive))
		if err != nil {
			return CycleResult{}, err
		}
		for _, b := range blocks {
			if !b.OK {
				out.BadBlocks = append(out.BadBlocks, b.Index)
			}
		}
	}
	r.results = append(r.results, out)
	return out, nil
}

// Results returns all recorded cycle results.
func (r *Runner) Results() []CycleResult {
	out := make([]CycleResult, len(r.results))
	copy(out, r.results)
	return out
}

// StoredArchives returns the failing archives kept for inspection, keyed
// by RFC 3339 cycle time.
func (r *Runner) StoredArchives() map[string][]byte {
	out := make(map[string][]byte, len(r.storedArchives))
	for k, v := range r.storedArchives {
		out[k] = v
	}
	return out
}

// StartFuzz returns a scheduler fuzz function drawing the paper's 0–119 s
// start sleep from the host's RNG stream.
func StartFuzz(rng *simkernel.RNG, hostID string) func() time.Duration {
	stream := "fuzz/" + hostID
	return func() time.Duration {
		return time.Duration(rng.Pick(stream, 120)) * time.Second
	}
}
