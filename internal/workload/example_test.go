package workload_test

import (
	"bytes"
	"crypto/md5"
	"fmt"

	"frostlab/internal/workload"
)

// The full §3.5 pipeline, then the §4.2.2 forensics: corrupt one bit,
// watch the hash change, and find the single damaged block the way the
// paper used bzip2recover.
func ExamplePack() {
	tree, _ := workload.GenerateTree("kernel-2.6", 20, 64<<10)
	archive, res, _ := workload.Pack(tree, 8<<10)
	fmt.Printf("packed %d files into %d compression blocks\n", tree.NumFiles(), res.Blocks)

	clean := res.MD5
	_ = workload.CorruptBit(archive, 2, func(n int) int { return n / 2 })
	blocks, _ := workload.ScanFBZ(bytes.NewReader(archive))
	bad := 0
	for _, b := range blocks {
		if !b.OK {
			bad++
		}
	}
	fmt.Printf("after one flipped bit: hash still %v, %d of %d blocks corrupt\n",
		clean == md5Of(archive), bad, len(blocks))
	// Output:
	// packed 20 files into 11 compression blocks
	// after one flipped bit: hash still false, 1 of 11 blocks corrupt
}

func md5Of(p []byte) workload.Digest { return workload.Digest(md5.Sum(p)) }
