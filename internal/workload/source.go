// Package workload implements the paper's synthetic load (§3.5): packing a
// Linux-kernel-like source directory with tar and a bzip2-style
// block-compressed format, verifying the archive with an md5sum against a
// reference value computed at installation, and — when a hash mismatches —
// recovering the archive block-by-block the way the paper used
// bzip2recover to find that "only a single one of the 396 bzip2
// compression blocks had been corrupted".
//
// Substitution note: Go's standard library decompresses bzip2 but does not
// compress it, so the package defines FBZ, a container of independently
// compressed DEFLATE blocks with per-block magic and checksums. FBZ keeps
// the properties the experiment depends on — fixed-size compression
// blocks, block-local corruption, block-level recoverability — while
// remaining pure stdlib.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// SourceFile is one file of the synthetic source tree.
type SourceFile struct {
	Path string
	Data []byte
}

// SourceTree is a deterministic, kernel-source-like directory tree. The
// same seed and size always produce byte-identical contents, which is what
// makes the reference md5 meaningful.
type SourceTree struct {
	files []SourceFile
	bytes int64
}

// Kernel-ish directory skeleton for generated paths.
var sourceDirs = []string{
	"arch/x86/kernel", "arch/x86/mm", "block", "crypto",
	"drivers/net", "drivers/scsi", "drivers/usb/core", "fs/ext3",
	"include/linux", "kernel", "lib", "mm", "net/ipv4", "net/core",
	"sound/pci", "scripts",
}

// C-flavoured vocabulary for generated file contents. Generated text
// compresses at roughly source-code ratios, which keeps the archive's
// block count realistic.
var sourceWords = strings.Fields(`
static inline int unsigned long struct void return if else for while
switch case break continue goto sizeof const volatile extern register
u8 u16 u32 u64 s32 dev buf len err ret flags lock irq page addr offset
skb net sock tcp udp inode dentry sb mutex spin list head next prev
init exit probe remove open close read write ioctl mmap poll kmalloc
kfree memset memcpy printk EXPORT_SYMBOL module_init module_exit
`)

// GenerateTree builds a synthetic source tree of approximately totalBytes
// across the given number of files.
func GenerateTree(seed string, files int, totalBytes int64) (*SourceTree, error) {
	if files <= 0 || totalBytes <= 0 {
		return nil, fmt.Errorf("workload: tree needs positive file count and size (got %d files, %d bytes)", files, totalBytes)
	}
	if int64(files) > totalBytes {
		return nil, fmt.Errorf("workload: more files (%d) than bytes (%d)", files, totalBytes)
	}
	h := int64(0)
	for _, c := range seed {
		h = h*131 + int64(c)
	}
	rng := rand.New(rand.NewSource(h))
	tree := &SourceTree{}
	perFile := totalBytes / int64(files)
	for i := 0; i < files; i++ {
		dir := sourceDirs[rng.Intn(len(sourceDirs))]
		name := fmt.Sprintf("%s/%s_%04d.c", dir, sourceWords[rng.Intn(len(sourceWords))], i)
		// Vary file sizes around the mean like real source files do.
		size := perFile/2 + rng.Int63n(perFile)
		if size < 16 {
			size = 16
		}
		data := generateCLike(rng, int(size))
		tree.files = append(tree.files, SourceFile{Path: name, Data: data})
		tree.bytes += int64(len(data))
	}
	sort.Slice(tree.files, func(i, j int) bool { return tree.files[i].Path < tree.files[j].Path })
	return tree, nil
}

// generateCLike emits pseudo-C text of roughly n bytes.
func generateCLike(rng *rand.Rand, n int) []byte {
	var b strings.Builder
	b.Grow(n + 64)
	indent := 0
	for b.Len() < n {
		line := make([]string, 0, 8)
		for w := 0; w < 3+rng.Intn(6); w++ {
			line = append(line, sourceWords[rng.Intn(len(sourceWords))])
		}
		switch rng.Intn(10) {
		case 0:
			b.WriteString(strings.Repeat("\t", indent) + "/* " + strings.Join(line, " ") + " */\n")
		case 1:
			if indent < 4 {
				b.WriteString(strings.Repeat("\t", indent) + strings.Join(line, " ") + " {\n")
				indent++
			}
		case 2:
			if indent > 0 {
				indent--
			}
			b.WriteString(strings.Repeat("\t", indent) + "}\n")
		default:
			b.WriteString(strings.Repeat("\t", indent) + strings.Join(line, "_") + ";\n")
		}
	}
	return []byte(b.String())
}

// Files returns the tree's files, sorted by path.
func (t *SourceTree) Files() []SourceFile { return t.files }

// TotalBytes returns the tree's content size.
func (t *SourceTree) TotalBytes() int64 { return t.bytes }

// NumFiles returns the number of files.
func (t *SourceTree) NumFiles() int { return len(t.files) }
