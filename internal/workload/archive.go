package workload

import (
	"archive/tar"
	"bytes"
	"compress/flate"
	"crypto/md5"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"
)

// FBZ container constants.
var (
	fbzFileMagic  = []byte("FBZ1")
	fbzBlockMagic = []byte{0x31, 0x41, 0x59, 0x26, 0x53, 0x59} // pi digits, like bzip2's block magic
)

// DefaultBlockSize is the uncompressed bytes per compression block,
// matching bzip2's -9 block size of 900 kB. The paper's archive had 396
// such blocks.
const DefaultBlockSize = 900 * 1000

// ErrNotFBZ reports a stream without the FBZ file magic.
var ErrNotFBZ = errors.New("workload: not an FBZ archive")

// Digest is an md5 archive checksum, comparable with ==.
type Digest [md5.Size]byte

// String formats the digest the way md5sum prints it.
func (d Digest) String() string { return fmt.Sprintf("%x", d[:]) }

// ArchiveResult describes a completed pack run.
type ArchiveResult struct {
	// MD5 is the digest of the complete compressed archive.
	MD5 Digest
	// Blocks is the number of compression blocks written.
	Blocks int
	// TarBytes is the size of the intermediate tar stream.
	TarBytes int64
	// CompressedBytes is the size of the FBZ output.
	CompressedBytes int64
}

// tarTimestamp is the fixed modification time used for all archive
// members, keeping the archive bit-reproducible across cycles (§3.5: if
// hashes match, "the tarball is overwritten in the next cycle").
var tarTimestamp = time.Date(2010, time.February, 19, 0, 0, 0, 0, time.UTC)

// WriteTar writes the tree as a deterministic tar stream.
func WriteTar(w io.Writer, tree *SourceTree) error {
	tw := tar.NewWriter(w)
	for _, f := range tree.Files() {
		hdr := &tar.Header{
			Name:    f.Path,
			Mode:    0o644,
			Size:    int64(len(f.Data)),
			ModTime: tarTimestamp,
			Format:  tar.FormatUSTAR,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return fmt.Errorf("workload: tar header %s: %w", f.Path, err)
		}
		if _, err := tw.Write(f.Data); err != nil {
			return fmt.Errorf("workload: tar body %s: %w", f.Path, err)
		}
	}
	return tw.Close()
}

// CompressFBZ compresses a stream into the FBZ block format: a file magic
// followed by independently DEFLATE-compressed blocks of blockSize
// uncompressed bytes, each carrying the block magic, both lengths, and a
// CRC-32 of its uncompressed content.
func CompressFBZ(w io.Writer, r io.Reader, blockSize int) (blocks int, err error) {
	if blockSize <= 0 {
		return 0, fmt.Errorf("workload: non-positive block size %d", blockSize)
	}
	if _, err := w.Write(fbzFileMagic); err != nil {
		return 0, err
	}
	buf := make([]byte, blockSize)
	for {
		n, rerr := io.ReadFull(r, buf)
		if n > 0 {
			if err := writeFBZBlock(w, buf[:n]); err != nil {
				return blocks, err
			}
			blocks++
		}
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			return blocks, nil
		}
		if rerr != nil {
			return blocks, rerr
		}
	}
}

func writeFBZBlock(w io.Writer, chunk []byte) error {
	var comp bytes.Buffer
	fw, err := flate.NewWriter(&comp, flate.BestCompression)
	if err != nil {
		return err
	}
	if _, err := fw.Write(chunk); err != nil {
		return err
	}
	if err := fw.Close(); err != nil {
		return err
	}
	var hdr [18]byte
	copy(hdr[:6], fbzBlockMagic)
	binary.BigEndian.PutUint32(hdr[6:10], uint32(len(chunk)))
	binary.BigEndian.PutUint32(hdr[10:14], uint32(comp.Len()))
	binary.BigEndian.PutUint32(hdr[14:18], crc32.ChecksumIEEE(chunk))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(comp.Bytes())
	return err
}

// DecompressFBZ expands an FBZ stream, verifying every block checksum.
func DecompressFBZ(w io.Writer, r io.Reader) error {
	blocks, err := ScanFBZ(r)
	if err != nil {
		return err
	}
	for _, b := range blocks {
		if !b.OK {
			return fmt.Errorf("workload: block %d corrupt: %s", b.Index, b.Err)
		}
		if _, err := w.Write(b.Data); err != nil {
			return err
		}
	}
	return nil
}

// BlockInfo is the result of scanning one FBZ block, in the spirit of
// bzip2recover: each block is independently decodable and verifiable.
type BlockInfo struct {
	Index int
	// OK reports whether the block decompressed and matched its CRC.
	OK bool
	// Err describes the failure for bad blocks.
	Err string
	// Data is the recovered content of good blocks (nil for bad ones).
	Data []byte
}

// ScanFBZ walks an FBZ stream block by block, attempting to recover each.
// A corrupted block is reported but does not stop the scan — this is the
// tool the reproduction of §4.2.2 uses to show that exactly one block of
// 396 was damaged.
func ScanFBZ(r io.Reader) ([]BlockInfo, error) {
	br := r
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("workload: reading file magic: %w", err)
	}
	if !bytes.Equal(magic, fbzFileMagic) {
		return nil, ErrNotFBZ
	}
	var out []BlockInfo
	for i := 0; ; i++ {
		var hdr [18]byte
		_, err := io.ReadFull(br, hdr[:])
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, fmt.Errorf("workload: block %d header: %w", i, err)
		}
		info := BlockInfo{Index: i}
		if !bytes.Equal(hdr[:6], fbzBlockMagic) {
			// Without the magic the stream is unframed; report and stop.
			info.Err = "block magic missing"
			out = append(out, info)
			return out, nil
		}
		rawLen := binary.BigEndian.Uint32(hdr[6:10])
		compLen := binary.BigEndian.Uint32(hdr[10:14])
		wantCRC := binary.BigEndian.Uint32(hdr[14:18])
		comp := make([]byte, compLen)
		if _, err := io.ReadFull(br, comp); err != nil {
			info.Err = fmt.Sprintf("truncated block payload: %v", err)
			out = append(out, info)
			return out, nil
		}
		data, err := io.ReadAll(flate.NewReader(bytes.NewReader(comp)))
		switch {
		case err != nil:
			info.Err = fmt.Sprintf("deflate: %v", err)
		case uint32(len(data)) != rawLen:
			info.Err = fmt.Sprintf("length %d, header says %d", len(data), rawLen)
		case crc32.ChecksumIEEE(data) != wantCRC:
			info.Err = "CRC mismatch"
		default:
			info.OK = true
			info.Data = data
		}
		out = append(out, info)
	}
}

// Pack runs the full §3.5 pipeline: tar the tree, compress to FBZ, and
// return the md5 of the compressed archive. The archive bytes are returned
// so callers can store the tarball when verification fails ("If the
// results differ, the packed tarball is stored").
func Pack(tree *SourceTree, blockSize int) ([]byte, ArchiveResult, error) {
	var tarBuf bytes.Buffer
	if err := WriteTar(&tarBuf, tree); err != nil {
		return nil, ArchiveResult{}, err
	}
	tarBytes := int64(tarBuf.Len())
	var out bytes.Buffer
	blocks, err := CompressFBZ(&out, &tarBuf, blockSize)
	if err != nil {
		return nil, ArchiveResult{}, err
	}
	res := ArchiveResult{
		MD5:             md5.Sum(out.Bytes()),
		Blocks:          blocks,
		TarBytes:        tarBytes,
		CompressedBytes: int64(out.Len()),
	}
	return out.Bytes(), res, nil
}

// CorruptBit flips a single bit inside the payload of the given block,
// modelling the single-page memory error the paper's forensics identified.
// The archive is modified in place; the bit offset within the block is
// chosen by the pick function (e.g. rng.Intn).
func CorruptBit(archive []byte, block int, pick func(n int) int) error {
	offsets, err := blockPayloadOffsets(archive)
	if err != nil {
		return err
	}
	if block < 0 || block >= len(offsets) {
		return fmt.Errorf("workload: block %d out of range (%d blocks)", block, len(offsets))
	}
	start, length := offsets[block][0], offsets[block][1]
	if length == 0 {
		return fmt.Errorf("workload: block %d has empty payload", block)
	}
	byteIdx := start + pick(length)
	bit := uint(pick(8))
	archive[byteIdx] ^= 1 << bit
	return nil
}

// blockPayloadOffsets returns (offset, length) of each block's compressed
// payload within the raw archive bytes.
func blockPayloadOffsets(archive []byte) ([][2]int, error) {
	if len(archive) < 4 || !bytes.Equal(archive[:4], fbzFileMagic) {
		return nil, ErrNotFBZ
	}
	var out [][2]int
	pos := 4
	for pos < len(archive) {
		if pos+18 > len(archive) {
			return nil, fmt.Errorf("workload: truncated block header at %d", pos)
		}
		if !bytes.Equal(archive[pos:pos+6], fbzBlockMagic) {
			return nil, fmt.Errorf("workload: bad block magic at %d", pos)
		}
		compLen := int(binary.BigEndian.Uint32(archive[pos+10 : pos+14]))
		payload := pos + 18
		if payload+compLen > len(archive) {
			return nil, fmt.Errorf("workload: truncated block payload at %d", payload)
		}
		out = append(out, [2]int{payload, compLen})
		pos = payload + compLen
	}
	return out, nil
}
