package workload

import (
	"archive/tar"
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

// TestTarReadBack verifies the pipeline's first stage against the standard
// library's own reader: every file of the tree comes back byte-identical
// and in order, with the deterministic metadata the reference digest
// depends on.
func TestTarReadBack(t *testing.T) {
	tree := smallTree(t)
	var buf bytes.Buffer
	if err := WriteTar(&buf, tree); err != nil {
		t.Fatal(err)
	}
	tr := tar.NewReader(&buf)
	i := 0
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		want := tree.Files()[i]
		if hdr.Name != want.Path {
			t.Fatalf("member %d is %q, want %q", i, hdr.Name, want.Path)
		}
		if hdr.Mode != 0o644 {
			t.Errorf("member %q mode %o", hdr.Name, hdr.Mode)
		}
		if !hdr.ModTime.Equal(tarTimestamp) {
			t.Errorf("member %q mtime %v not pinned; archive would not be reproducible", hdr.Name, hdr.ModTime)
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, want.Data) {
			t.Fatalf("member %q content differs", hdr.Name)
		}
		i++
	}
	if i != tree.NumFiles() {
		t.Errorf("read back %d members, want %d", i, tree.NumFiles())
	}
}

// TestAnyBitFlipDetected is the property behind §4.2.2's forensics: flip
// any single bit anywhere in any block payload and either the containing
// block fails its scan, or — the one physical exception — the flip landed
// in dead DEFLATE padding bits and the block still decodes to identical
// content (the archive's md5 changes but no data was damaged, exactly
// what a bzip2recover pass finding zero bad blocks would mean).
func TestAnyBitFlipDetected(t *testing.T) {
	tree, err := GenerateTree("bitflip", 10, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	archive, res, err := Pack(tree, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := ScanFBZ(bytes.NewReader(archive))
	if err != nil {
		t.Fatal(err)
	}
	f := func(blockSeed, byteSeed, bitSeed uint16) bool {
		block := int(blockSeed) % res.Blocks
		corrupted := append([]byte(nil), archive...)
		if err := CorruptBit(corrupted, block, func(n int) int {
			if n == 8 {
				return int(bitSeed) % 8
			}
			return int(byteSeed) % n
		}); err != nil {
			return false
		}
		blocks, err := ScanFBZ(bytes.NewReader(corrupted))
		if err != nil {
			return false
		}
		for _, b := range blocks {
			if b.Index == block {
				if !b.OK {
					return true // damage flagged in the right block
				}
				// Scanned clean: only acceptable if truly harmless.
				return bytes.Equal(b.Data, clean[block].Data)
			}
			if !b.OK {
				return false // an innocent block was flagged
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestFBZGoodBlocksRecoverable confirms the bzip2recover property: after
// corrupting one block, every *other* block's content is still recovered
// intact.
func TestFBZGoodBlocksRecoverable(t *testing.T) {
	tree, err := GenerateTree("recover", 10, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	archive, res, err := Pack(tree, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	cleanBlocks, err := ScanFBZ(bytes.NewReader(archive))
	if err != nil {
		t.Fatal(err)
	}
	target := res.Blocks / 3
	if err := CorruptBit(archive, target, func(n int) int { return n / 2 }); err != nil {
		t.Fatal(err)
	}
	blocks, err := ScanFBZ(bytes.NewReader(archive))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if b.Index == target {
			if b.OK {
				t.Fatal("corrupted block scanned OK")
			}
			continue
		}
		if !b.OK {
			t.Fatalf("innocent block %d flagged", b.Index)
		}
		if !bytes.Equal(b.Data, cleanBlocks[b.Index].Data) {
			t.Fatalf("block %d content changed by a flip elsewhere", b.Index)
		}
	}
}
