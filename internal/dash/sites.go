package dash

import (
	"net/http"
)

// Multi-site fleet view: /api/sites. The dashboard stays decoupled from
// the simulation engine — the embedding wires a snapshot callback in, and
// the handler serves whatever the callback reports. A deployment without
// a fleet (the single-site monitoring host) answers the same explicit
// JSON 404 the other optional planes use.

// SiteStatus is one site's live state in an /api/sites response. It is a
// dash-local shape so the dashboard does not import the simulation core;
// the embedding maps its own site state into it.
type SiteStatus struct {
	Name    string `json:"name"`
	Climate string `json:"climate"`
	Tariff  string `json:"tariff"`
	// Safe reports the placement policy's eligibility verdict: inside the
	// allowable envelope with no condensation guard latched.
	Safe bool `json:"safe"`
	// Live thermal/control state.
	IntakeC float64 `json:"intake_c"`
	Damper  float64 `json:"damper"`
	// Work placement this dispatch tick.
	AssignedCycles float64 `json:"assigned_cycles"`
	// Economics: spot rates and cumulative account.
	PriceUSDPerKWh float64 `json:"price_usd_kwh"`
	CarbonGPerKWh  float64 `json:"carbon_g_kwh"`
	CostUSD        float64 `json:"cost_usd_total"`
	CarbonG        float64 `json:"carbon_g_total"`
	CyclesDone     float64 `json:"cycles_done"`
	CyclesShed     float64 `json:"cycles_shed"`
}

// SiteFleet is the /api/sites response shape.
type SiteFleet struct {
	Policy string       `json:"policy"`
	Sites  []SiteStatus `json:"sites"`
}

// WithSites attaches a fleet snapshot source, served on /api/sites, and
// returns the server. The callback runs per request, so it should be a
// cheap snapshot of state the embedding already tracks. Without one the
// endpoint answers 404.
func (s *Server) WithSites(fn func() SiteFleet) *Server {
	s.sites = fn
	return s
}

func (s *Server) handleSites(w http.ResponseWriter, r *http.Request) {
	if s.sites == nil {
		writeJSONError(w, http.StatusNotFound, "no site fleet attached to this dashboard")
		return
	}
	fleet := s.sites()
	if fleet.Sites == nil {
		// Encode an empty roster as [], not null — clients range over it.
		fleet.Sites = []SiteStatus{}
	}
	writeJSON(w, fleet)
}
