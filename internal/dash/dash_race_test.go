package dash

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"frostlab/internal/monitor"
)

// TestIngestVersusQueriesRace drives concurrent sample ingestion (one
// goroutine per host — SampleDB permits one writer per series, and each
// host owns its series) against a scraper fleet reading /api/series and
// per-host windows. The production shape is exactly this: collectord's
// rounds ingest while the dashboard serves. Run under -race, the test
// proves the tsdb read path and the catalogue never tear.
func TestIngestVersusQueriesRace(t *testing.T) {
	hosts := []string{"01", "02", "03", "04"}
	db := monitor.NewSampleDB()
	coll := monitor.NewCollector(0).WithSamples(db)
	for _, h := range hosts {
		// Seed each series so queries always have something to decode.
		db.Ingest(h, monitor.SensorLog, sampleLog(8))
	}
	srv := httptest.NewServer(NewServer(coll, hosts, t0).WithScrapeCache(time.Millisecond).Handler())
	defer srv.Close()

	const (
		writesPerHost    = 40
		readersPerHost   = 2
		queriesPerReader = 30
	)
	var wg sync.WaitGroup
	for hi, h := range hosts {
		h := h
		at := t0.Add(time.Duration(8+100*hi) * 20 * time.Minute)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < writesPerHost; i++ {
				line := fmt.Sprintf("%s cpu=%.1f disk0=%.1f\n",
					at.UTC().Format(time.RFC3339), -4.0+0.1*float64(i), 6.0)
				db.Ingest(h, monitor.SensorLog, []byte(line))
				at = at.Add(20 * time.Minute)
			}
		}()
		for r := 0; r < readersPerHost; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for q := 0; q < queriesPerReader; q++ {
					for _, path := range []string{
						"/api/series",
						"/api/series/" + h + "/cpu",
						"/api/series/" + h + "/cpu?from=2010-02-19T12:00:00Z",
					} {
						resp, err := http.Get(srv.URL + path)
						if err != nil {
							t.Error(err)
							return
						}
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							t.Errorf("%s = %d", path, resp.StatusCode)
							return
						}
					}
				}
			}()
		}
	}
	wg.Wait()
}
