package dash

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"frostlab/internal/monitor"
)

// sampleLog renders n agent-style sensor lines starting at t0 and returns
// the raw log bytes.
func sampleLog(n int) []byte {
	var buf bytes.Buffer
	at := t0
	for i := 0; i < n; i++ {
		fmt.Fprintf(&buf, "%s cpu=%.1f disk0=%.1f\n",
			at.UTC().Format(time.RFC3339), -8+0.1*float64(i%100), 5+0.1*float64(i%30))
		at = at.Add(20 * time.Minute)
	}
	return buf.Bytes()
}

// seededSeriesServer builds a dashboard whose collector carries a sample
// plane fed with raw, then returns the server and the raw log.
func seededSeriesServer(t *testing.T, n int) (*httptest.Server, []byte) {
	t.Helper()
	raw := sampleLog(n)
	db := monitor.NewSampleDB()
	db.Ingest("01", monitor.SensorLog, raw)
	coll := monitor.NewCollector(0).WithSamples(db)
	coll.Mirror("01").Put(monitor.SensorLog, raw)
	srv := httptest.NewServer(NewServer(coll, []string{"01"}, t0).Handler())
	t.Cleanup(srv.Close)
	return srv, raw
}

// referenceWindowJSON renders the response the old raw-mirror path would
// have produced: re-parse the raw log with the exact live parser and
// marshal through the same encoder the handler uses.
func referenceWindowJSON(t *testing.T, raw []byte, series string, from, to time.Time) string {
	t.Helper()
	out := SeriesWindow{Series: series, Points: []SeriesPoint{}}
	monitor.ParseSamples("01", raw, func(name string, ts int64, v float64) {
		if name != series {
			return
		}
		at := time.Unix(0, ts).UTC()
		if at.Before(from) || at.After(to) {
			return
		}
		out.Points = append(out.Points, SeriesPoint{At: at, Value: v})
	})
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestAPISeriesWindowByteIdentical(t *testing.T) {
	// 3000 samples: the series spans multiple sealed blocks plus a live
	// head, so the response is decoded from compressed storage — and must
	// be byte-for-byte what serving from the raw mirror produced.
	srv, raw := seededSeriesServer(t, 3000)

	code, body := get(t, srv.URL+"/api/series/01/cpu")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	want := referenceWindowJSON(t, raw, "01/cpu",
		time.Time{}, time.Date(9999, 1, 1, 0, 0, 0, 0, time.UTC))
	if body != want {
		t.Fatalf("full-range response diverged from raw-mirror reference\ngot  %d bytes\nwant %d bytes", len(body), len(want))
	}

	from := t0.Add(24 * time.Hour)
	to := t0.Add(48 * time.Hour)
	url := fmt.Sprintf("%s/api/series/01/cpu?from=%s&to=%s", srv.URL,
		from.Format(time.RFC3339), to.Format(time.RFC3339))
	code, body = get(t, url)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	want = referenceWindowJSON(t, raw, "01/cpu", from, to)
	if body != want {
		t.Fatalf("windowed response diverged from raw-mirror reference")
	}
	if !strings.Contains(body, `"value"`) || strings.Count(body, `"at"`) != 73 {
		t.Fatalf("window holds %d samples, want 73 (20-min cadence over 24h, both ends inclusive)", strings.Count(body, `"at"`))
	}
}

func TestAPISeriesCatalogue(t *testing.T) {
	srv, _ := seededSeriesServer(t, 100)
	code, body := get(t, srv.URL+"/api/series")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var infos []struct {
		Series          string `json:"series"`
		Samples         int64  `json:"samples"`
		CompressedBytes int64  `json:"compressed_bytes"`
	}
	if err := json.Unmarshal([]byte(body), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Series != "01/cpu" || infos[1].Series != "01/disk0" {
		t.Fatalf("catalogue %v", infos)
	}
	for _, in := range infos {
		if in.Samples != 100 || in.CompressedBytes == 0 {
			t.Errorf("series %s: samples=%d compressed=%d", in.Series, in.Samples, in.CompressedBytes)
		}
	}
}

func TestAPISeriesErrors(t *testing.T) {
	srv, _ := seededSeriesServer(t, 10)
	if code, _ := get(t, srv.URL+"/api/series/01/nope"); code != http.StatusNotFound {
		t.Errorf("unknown series: status %d", code)
	}
	if code, _ := get(t, srv.URL+"/api/series/01/cpu?from=yesterday"); code != http.StatusBadRequest {
		t.Errorf("bad from: status %d", code)
	}

	// Without a sample plane the endpoints answer like /api/gaps without
	// a ledger: a decodable JSON 404.
	plain, _ := seededServer(t)
	code, body := get(t, plain.URL+"/api/series")
	if code != http.StatusNotFound || !strings.Contains(body, "error") {
		t.Errorf("no sample plane: status %d body %s", code, body)
	}
}

func TestExistingEndpointsUnchangedBySamplePlane(t *testing.T) {
	// Attaching the sample plane must not perturb any pre-existing
	// endpoint's bytes: same mirrors, byte-identical responses.
	raw := sampleLog(50)
	build := func(withSamples bool) *httptest.Server {
		coll := monitor.NewCollector(0)
		if withSamples {
			db := monitor.NewSampleDB()
			db.Ingest("01", monitor.SensorLog, raw)
			coll.WithSamples(db)
		}
		coll.Mirror("01").Put(monitor.SensorLog, raw)
		coll.Mirror("01").Put(monitor.MD5Log, []byte("2010-02-19T12:10:00Z OK d41d8cd98f00b204e9800998ecf8427e\n"))
		srv := httptest.NewServer(NewServer(coll, []string{"01"}, t0).Handler())
		t.Cleanup(srv.Close)
		return srv
	}
	before := build(false)
	after := build(true)
	for _, ep := range []string{"/", "/api/hosts", "/api/rounds", "/api/ledger/01", "/logs/01/" + monitor.SensorLog} {
		c1, b1 := get(t, before.URL+ep)
		c2, b2 := get(t, after.URL+ep)
		if c1 != c2 || b1 != b2 {
			t.Errorf("%s changed after attaching sample plane (status %d->%d)", ep, c1, c2)
		}
	}
}
