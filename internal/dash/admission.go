package dash

import (
	"bytes"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// admission is the dashboard's overload gate. The dash serves whoever
// asks — production scrape fleets ask hard — and without a gate a burst
// of scrapers queues unboundedly inside net/http, stretching every
// response until the probes themselves time out. The gate bounds
// concurrent work instead: past the watermark, requests are refused
// immediately with 503 and a Retry-After, which keeps the served
// requests fast and tells well-behaved clients when to come back.
// Refusals are counted, never silent.
type admission struct {
	max        int64
	retryAfter time.Duration

	inflight atomic.Int64
	requests atomic.Uint64 // all requests seen by the gate
	rejected atomic.Uint64 // requests refused with 503
}

// WithAdmission bounds concurrent request handling at max in-flight
// requests (values below 1 mean 1) and returns the server. Requests past
// the watermark receive 503 with a Retry-After of retryAfter (rounded up
// to whole seconds, minimum 1). /healthz bypasses the gate: liveness
// must stay answerable precisely when the dashboard is shedding load,
// or the orchestrator kills an overloaded-but-healthy process.
// /api/alerts bypasses it for the same reason: overload is exactly when
// an operator needs to see what is firing, and the alert snapshot is a
// small in-memory read that cannot compound the overload.
func (s *Server) WithAdmission(max int, retryAfter time.Duration) *Server {
	if max < 1 {
		max = 1
	}
	s.adm = &admission{max: int64(max), retryAfter: retryAfter}
	return s
}

// wrap applies the admission gate to the routed handler.
func (a *admission) wrap(next http.Handler) http.Handler {
	secs := int64(a.retryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	retryAfter := strconv.FormatInt(secs, 10)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		a.requests.Add(1)
		if r.URL.Path == "/healthz" || r.URL.Path == "/api/alerts" {
			next.ServeHTTP(w, r)
			return
		}
		if a.inflight.Add(1) > a.max {
			a.inflight.Add(-1)
			a.rejected.Add(1)
			w.Header().Set("Retry-After", retryAfter)
			writeJSONError(w, http.StatusServiceUnavailable, "overloaded: too many in-flight requests")
			return
		}
		defer a.inflight.Add(-1)
		next.ServeHTTP(w, r)
	})
}

// scrapeCache coalesces identical reads within a collection round. The
// dashboard's expensive endpoints render the same bytes for every caller
// until the next round lands, so under a scraper fleet the cache turns
// N identical renders per round into 1. Entries expire on a TTL and on
// explicit invalidation (the collector bumps the generation when a round
// completes), whichever comes first.
type scrapeCache struct {
	ttl time.Duration
	gen atomic.Uint64

	mu      sync.Mutex
	entries map[string]*cacheEntry

	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheEntry struct {
	gen     uint64
	expires time.Time
	status  int
	ctype   string
	body    []byte
}

// cacheablePaths are the endpoints worth coalescing: rendered from
// whole-fleet state, identical for every caller, and hot under scrape
// load. Parameterised endpoints (per-host windows, logs) stay uncached —
// their key space is unbounded and per-client.
var cacheablePaths = map[string]bool{
	"/metrics":    true,
	"/api/series": true,
	"/api/rounds": true,
	"/api/gaps":   true,
}

// WithScrapeCache caches responses of the hot scrape endpoints for ttl
// (values <= 0 disable caching) and returns the server. Call
// InvalidateScrapeCache when new data lands so scrapes never serve a
// stale round past its replacement.
func (s *Server) WithScrapeCache(ttl time.Duration) *Server {
	if ttl <= 0 {
		return s
	}
	s.cache = &scrapeCache{ttl: ttl, entries: make(map[string]*cacheEntry)}
	return s
}

// InvalidateScrapeCache drops every cached response by bumping the cache
// generation. It is cheap (one atomic add) and safe from any goroutine,
// so collection rounds call it inline when they publish new state. A
// no-op without a cache.
func (s *Server) InvalidateScrapeCache() {
	if s.cache != nil {
		s.cache.gen.Add(1)
	}
}

// wrap applies response caching to the routed handler.
func (c *scrapeCache) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !cacheablePaths[r.URL.Path] {
			next.ServeHTTP(w, r)
			return
		}
		key := r.URL.Path
		gen := c.gen.Load()
		now := time.Now()
		c.mu.Lock()
		e := c.entries[key]
		if e != nil && e.gen == gen && now.Before(e.expires) {
			c.mu.Unlock()
			c.hits.Add(1)
			w.Header().Set("Content-Type", e.ctype)
			w.Header().Set("X-Frostlab-Cache", "hit")
			w.WriteHeader(e.status)
			_, _ = w.Write(e.body)
			return
		}
		c.mu.Unlock()
		c.misses.Add(1)
		rec := &captureWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		if rec.status == http.StatusOK {
			c.mu.Lock()
			c.entries[key] = &cacheEntry{
				gen:     gen,
				expires: now.Add(c.ttl),
				status:  rec.status,
				ctype:   rec.Header().Get("Content-Type"),
				body:    rec.buf.Bytes(),
			}
			c.mu.Unlock()
		}
	})
}

// captureWriter tees a response into a buffer so a 200 can be cached.
type captureWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
	buf    bytes.Buffer
}

func (cw *captureWriter) WriteHeader(status int) {
	if !cw.wrote {
		cw.wrote = true
		cw.status = status
	}
	cw.ResponseWriter.WriteHeader(status)
}

func (cw *captureWriter) Write(b []byte) (int, error) {
	cw.wrote = true
	cw.buf.Write(b)
	return cw.ResponseWriter.Write(b)
}
