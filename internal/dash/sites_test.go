package dash

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sitesOnlyServer is the econ study's deployment shape: a dashboard with
// a fleet snapshot source and no collection plane at all.
func sitesOnlyServer(fn func() SiteFleet) *Server {
	s := NewServer(nil, nil, time.Unix(0, 0).UTC())
	if fn != nil {
		s.WithSites(fn)
	}
	return s
}

func TestSitesEndpoint(t *testing.T) {
	calls := 0
	srv := sitesOnlyServer(func() SiteFleet {
		calls++
		return SiteFleet{
			Policy: "follow-cold",
			Sites: []SiteStatus{
				{Name: "helsinki", Climate: "helsinki", Tariff: "nordic-hydro", Safe: true,
					IntakeC: -7.5, Damper: 0.8, AssignedCycles: 11, PriceUSDPerKWh: 0.055,
					CarbonGPerKWh: 90, CostUSD: 1.23, CarbonG: 2100, CyclesDone: 900},
				{Name: "desert", Climate: "desert", Tariff: "solar-duck", Safe: false,
					IntakeC: 44.1, Damper: 1.0, AssignedCycles: 0},
			},
		}
	})
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/api/sites", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	if calls != 1 {
		t.Fatalf("snapshot callback ran %d times", calls)
	}
	var got SiteFleet
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Policy != "follow-cold" || len(got.Sites) != 2 {
		t.Fatalf("bad fleet: %+v", got)
	}
	if got.Sites[0].Name != "helsinki" || !got.Sites[0].Safe || got.Sites[1].Safe {
		t.Fatalf("site state mangled: %+v", got.Sites)
	}
	for _, field := range []string{
		`"intake_c"`, `"damper"`, `"assigned_cycles"`, `"price_usd_kwh"`,
		`"carbon_g_kwh"`, `"cost_usd_total"`, `"carbon_g_total"`,
	} {
		if !strings.Contains(rr.Body.String(), field) {
			t.Errorf("response missing %s", field)
		}
	}
}

func TestSitesEndpointEmptyRoster(t *testing.T) {
	srv := sitesOnlyServer(func() SiteFleet { return SiteFleet{Policy: "static"} })
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/api/sites", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), `"sites": []`) {
		t.Fatalf("empty roster must encode as [], got %s", rr.Body.String())
	}
}

func TestSitesEndpointUnattached(t *testing.T) {
	srv := sitesOnlyServer(nil)
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/api/sites", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), `"error"`) {
		t.Fatalf("404 must be a JSON error body, got %s", rr.Body.String())
	}
}

// TestNilCollectorGuards: a sites-only dashboard must answer every
// collection-plane endpoint with an explicit error, never a panic.
func TestNilCollectorGuards(t *testing.T) {
	srv := sitesOnlyServer(func() SiteFleet { return SiteFleet{} })
	h := srv.Handler()
	for _, path := range []string{
		"/api/hosts", "/api/rounds", "/api/ledger/pc1",
		"/api/series", "/api/series/pc1/temp", "/logs/pc1/md5.log",
	} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		if rr.Code != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, rr.Code)
		}
	}
	// The overview degrades to a stub rather than erroring.
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), "no collection plane") {
		t.Fatalf("overview without a collector: %d %s", rr.Code, rr.Body.String())
	}
}
