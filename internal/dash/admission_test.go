package dash

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"frostlab/internal/monitor"
	"frostlab/internal/telemetry"
)

// blockingWriter is a ResponseWriter whose first Write parks until
// released, so a test can deterministically hold an in-flight slot.
type blockingWriter struct {
	h       http.Header
	entered chan struct{} // closed once the handler is mid-write
	release chan struct{} // close to let the write finish
	once    sync.Once
}

func newBlockingWriter() *blockingWriter {
	return &blockingWriter{
		h:       make(http.Header),
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
}

func (bw *blockingWriter) Header() http.Header { return bw.h }
func (bw *blockingWriter) WriteHeader(int)     {}
func (bw *blockingWriter) Write(b []byte) (int, error) {
	bw.once.Do(func() {
		close(bw.entered)
		<-bw.release
	})
	return len(b), nil
}

func TestAdmissionShedsPastWatermark(t *testing.T) {
	coll := monitor.NewCollector(0)
	s := NewServer(coll, []string{"01"}, t0).WithAdmission(1, 3*time.Second)
	h := s.Handler()

	// Occupy the single slot with a handler parked mid-response.
	bw := newBlockingWriter()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(bw, httptest.NewRequest("GET", "/", nil))
	}()
	<-bw.entered

	// Past the watermark: immediate 503 with Retry-After, JSON body.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/hosts", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-watermark status = %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", got)
	}
	if !strings.Contains(rec.Body.String(), "overloaded") {
		t.Errorf("503 body = %q", rec.Body.String())
	}

	// Liveness bypasses the gate: healthz answers while shedding.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("healthz during overload = %d, want 200", rec.Code)
	}

	// Release the slot; the gate admits again.
	close(bw.release)
	<-done
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/hosts", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("post-release status = %d, want 200", rec.Code)
	}

	if s.adm.rejected.Load() != 1 {
		t.Errorf("rejected = %d, want 1", s.adm.rejected.Load())
	}
	// healthz and both admitted requests all count as seen.
	if s.adm.requests.Load() != 4 {
		t.Errorf("requests = %d, want 4", s.adm.requests.Load())
	}
	if s.adm.inflight.Load() != 0 {
		t.Errorf("inflight after drain = %d, want 0", s.adm.inflight.Load())
	}
}

func TestScrapeCacheCoalescesWithinRound(t *testing.T) {
	coll := monitor.NewCollector(0)
	s := NewServer(coll, []string{"01"}, t0).WithScrapeCache(time.Hour)
	h := s.Handler()

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	first := get("/api/rounds")
	if first.Code != http.StatusOK || first.Header().Get("X-Frostlab-Cache") != "" {
		t.Fatalf("first read: code %d, cache header %q", first.Code, first.Header().Get("X-Frostlab-Cache"))
	}
	second := get("/api/rounds")
	if second.Header().Get("X-Frostlab-Cache") != "hit" {
		t.Fatalf("second read not served from cache")
	}
	if second.Body.String() != first.Body.String() {
		t.Error("cached body differs from rendered body")
	}
	if second.Header().Get("Content-Type") != "application/json" {
		t.Errorf("cached Content-Type = %q", second.Header().Get("Content-Type"))
	}

	// New round published: invalidation forces a re-render.
	s.InvalidateScrapeCache()
	third := get("/api/rounds")
	if third.Header().Get("X-Frostlab-Cache") == "hit" {
		t.Error("read after invalidation served stale cache")
	}
	if get("/api/rounds").Header().Get("X-Frostlab-Cache") != "hit" {
		t.Error("cache did not repopulate after invalidation")
	}

	// Parameterised endpoints stay uncached.
	get("/api/ledger/01")
	if get("/api/ledger/01").Header().Get("X-Frostlab-Cache") == "hit" {
		t.Error("per-host endpoint was cached")
	}

	if hits := s.cache.hits.Load(); hits != 2 {
		t.Errorf("cache hits = %d, want 2", hits)
	}
	// Two misses: the first render and the post-invalidation re-render.
	// Uncacheable paths never touch the counters.
	if misses := s.cache.misses.Load(); misses != 2 {
		t.Errorf("cache misses = %d, want 2", misses)
	}
}

func TestScrapeCacheTTLExpiry(t *testing.T) {
	coll := monitor.NewCollector(0)
	s := NewServer(coll, []string{"01"}, t0).WithScrapeCache(10 * time.Millisecond)
	h := s.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/rounds", nil))
	time.Sleep(25 * time.Millisecond)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/rounds", nil))
	if rec.Header().Get("X-Frostlab-Cache") == "hit" {
		t.Error("expired entry served as a hit")
	}
}

func TestScrapeCacheDoesNotCacheErrors(t *testing.T) {
	coll := monitor.NewCollector(0) // no gap ledger: /api/gaps is a JSON 404
	s := NewServer(coll, []string{"01"}, t0).WithScrapeCache(time.Hour)
	h := s.Handler()
	for i := 0; i < 2; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/gaps", nil))
		if rec.Code != http.StatusNotFound {
			t.Fatalf("read %d: code %d, want 404", i, rec.Code)
		}
		if rec.Header().Get("X-Frostlab-Cache") == "hit" {
			t.Error("error response was cached")
		}
	}
}

func TestDashServingMetricsExported(t *testing.T) {
	reg := telemetry.NewRegistry()
	coll := monitor.NewCollector(0)
	s := NewServer(coll, []string{"01"}, t0).
		WithAdmission(8, time.Second).
		WithScrapeCache(time.Hour).
		WithTelemetry(reg)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get(t, srv.URL+"/api/rounds")
	get(t, srv.URL+"/api/rounds")
	_, body := get(t, srv.URL+"/metrics")
	for _, want := range []string{
		"frostlab_dash_requests_total 3",
		"frostlab_dash_rejected_total 0",
		"frostlab_dash_cache_hits_total 1",
		"frostlab_dash_cache_misses_total 2",
		"frostlab_dash_inflight 1", // the /metrics request itself
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
