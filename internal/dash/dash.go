// Package dash is a read-only HTTP status dashboard for the monitoring
// host: the modern analogue of the paper's hourly terrace webcam (§3.2's
// footnote). It exposes the collector's mirrored logs, parsed md5sum
// ledgers, and round statistics over plain net/http, so an operator can
// check on the fleet without touching the machines — the whole point of
// the §3.5 collection loop.
//
// All endpoints are GET-only and serve either text/plain or JSON:
//
//	GET /                    plain-text overview
//	GET /healthz             liveness probe
//	GET /buildinfo           JSON build/version information
//	GET /metrics             Prometheus text exposition (with a registry)
//	GET /api/hosts           JSON host list
//	GET /api/rounds          JSON collection-round history
//	GET /api/gaps            JSON per-host gap accounting (with a ledger)
//	GET /api/ledger/{host}   JSON parsed md5sum ledger for one host
//	GET /api/series          JSON sample-series catalogue (with a SampleDB)
//	GET /api/series/{host}/{metric}?from=&to=
//	                         JSON samples in the window, streamed straight
//	                         from compressed tsdb blocks
//	GET /api/alerts          JSON active alerts (with a rules engine)
//	GET /api/rules           JSON rule statuses (with a rules engine)
//	GET /api/incidents       JSON incident log + timeline (with a rules engine)
//	GET /logs/{host}/{file}  raw mirrored log content
//
// API errors are JSON bodies of the form {"error": "..."} with the
// matching status code.
package dash

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"time"

	"frostlab/internal/monitor"
	"frostlab/internal/rules"
	"frostlab/internal/telemetry"
)

// Server serves a Collector's state. It performs no writes and holds no
// state of its own, so it is safe to serve while collection rounds run.
type Server struct {
	coll *monitor.Collector
	// Hosts lists the host IDs the dashboard should show. The collector
	// itself learns hosts lazily, so the roster comes from the caller.
	hosts []string
	start time.Time
	// gaps, when set, adds coverage accounting to the overview and the
	// /api/gaps endpoint. The ledger is internally locked, so it can keep
	// filling while the dashboard serves.
	gaps *monitor.GapLedger
	// reg, when set, serves the process's metrics registry on /metrics.
	reg *telemetry.Registry
	// adm, when set, bounds concurrent request handling (WithAdmission).
	adm *admission
	// cache, when set, coalesces hot scrape reads (WithScrapeCache).
	cache *scrapeCache
	// rules, when set, serves the rules engine's alert/incident state.
	// The engine is internally locked, so serving while it evaluates is
	// safe.
	rules *rules.Engine
	// sites, when set, serves a multi-site fleet snapshot on /api/sites
	// (WithSites).
	sites func() SiteFleet
}

// NewServer returns a dashboard over the collector for the given roster.
func NewServer(coll *monitor.Collector, hosts []string, start time.Time) *Server {
	sorted := append([]string(nil), hosts...)
	sort.Strings(sorted)
	return &Server{coll: coll, hosts: sorted, start: start}
}

// WithLedger attaches a gap ledger to the dashboard and returns it.
func (s *Server) WithLedger(g *monitor.GapLedger) *Server {
	s.gaps = g
	return s
}

// WithRules attaches a rules engine, served on /api/alerts, /api/rules
// and /api/incidents, and returns the server. Without one those
// endpoints answer 404.
func (s *Server) WithRules(eng *rules.Engine) *Server {
	s.rules = eng
	return s
}

// WithTelemetry attaches a metrics registry, served on /metrics, and
// returns the server. Without one, /metrics is 404. The dashboard's own
// serving counters are registered as scrape-time views, so overload
// shedding and cache effectiveness are visible on the same /metrics page
// the scrapers are hammering. Call it after WithAdmission/WithScrapeCache
// so the views observe the configured gates.
func (s *Server) WithTelemetry(reg *telemetry.Registry) *Server {
	s.reg = reg
	reg.CounterFunc("frostlab_dash_requests_total",
		"HTTP requests seen by the dashboard's admission gate.",
		func() float64 {
			if s.adm == nil {
				return 0
			}
			return float64(s.adm.requests.Load())
		})
	reg.CounterFunc("frostlab_dash_rejected_total",
		"Requests refused with 503 past the in-flight watermark.",
		func() float64 {
			if s.adm == nil {
				return 0
			}
			return float64(s.adm.rejected.Load())
		})
	reg.GaugeFunc("frostlab_dash_inflight",
		"Requests currently being handled.",
		func() float64 {
			if s.adm == nil {
				return 0
			}
			return float64(s.adm.inflight.Load())
		})
	reg.CounterFunc("frostlab_dash_cache_hits_total",
		"Scrape responses served from the round cache.",
		func() float64 {
			if s.cache == nil {
				return 0
			}
			return float64(s.cache.hits.Load())
		})
	reg.CounterFunc("frostlab_dash_cache_misses_total",
		"Scrape responses rendered because the round cache missed.",
		func() float64 {
			if s.cache == nil {
				return 0
			}
			return float64(s.cache.misses.Load())
		})
	return s
}

// Handler returns the dashboard's routing handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleIndex)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /buildinfo", telemetry.BuildInfoHandler())
	if s.reg != nil {
		mux.Handle("GET /metrics", telemetry.MetricsHandler(s.reg))
	}
	mux.HandleFunc("GET /api/hosts", s.handleHosts)
	mux.HandleFunc("GET /api/rounds", s.handleRounds)
	mux.HandleFunc("GET /api/gaps", s.handleGaps)
	mux.HandleFunc("GET /api/ledger/{host}", s.handleLedger)
	mux.HandleFunc("GET /api/series", s.handleSeries)
	mux.HandleFunc("GET /api/series/{host}/{metric}", s.handleSeriesWindow)
	mux.HandleFunc("GET /api/sites", s.handleSites)
	mux.HandleFunc("GET /api/alerts", s.handleAlerts)
	mux.HandleFunc("GET /api/rules", s.handleRules)
	mux.HandleFunc("GET /api/incidents", s.handleIncidents)
	mux.HandleFunc("GET /logs/{host}/{file}", s.handleLog)
	var h http.Handler = mux
	// Cache inside, admission outside: a cache hit still occupies an
	// in-flight slot (it does real I/O to the client), while a rejected
	// request must never render anything expensive.
	if s.cache != nil {
		h = s.cache.wrap(h)
	}
	if s.adm != nil {
		h = s.adm.wrap(h)
	}
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "frostlab monitoring host — up since %s\n\n", s.start.Format(time.RFC3339))
	if s.coll == nil {
		// A sites-only deployment (the econ study's dashboard) has no
		// collection plane; the overview still answers.
		fmt.Fprintln(w, "no collection plane attached")
		return
	}
	hist := s.coll.History()
	fmt.Fprintf(w, "collection rounds: %d\n", len(hist))
	var literal, total int
	for _, rs := range hist {
		literal += rs.LiteralBytes
		total += rs.TotalBytes
	}
	if total > 0 {
		fmt.Fprintf(w, "delta transfer: %d literal bytes of %d corpus (%.1f%% saved)\n",
			literal, total, (1-float64(literal)/float64(total))*100)
	}
	if s.gaps != nil && s.gaps.Rounds() > 0 {
		fmt.Fprintf(w, "fleet coverage: %.4f over %d rounds\n", s.gaps.Coverage(), s.gaps.Rounds())
	}
	fmt.Fprintf(w, "\n%-6s %10s %8s %8s  %s\n", "host", "md5 OK", "bad", "errors", "last cycle")
	for _, id := range s.hosts {
		sum, err := monitor.ParseLedger(s.coll.Mirror(id).Get(monitor.MD5Log))
		if err != nil {
			fmt.Fprintf(w, "%-6s ledger unreadable: %v\n", id, err)
			continue
		}
		last := "-"
		if !sum.LastAt.IsZero() {
			last = sum.LastAt.Format(time.RFC3339)
		}
		fmt.Fprintf(w, "%-6s %10d %8d %8d  %s\n", id, sum.OK, sum.Bad, sum.Errors, last)
	}
}

func (s *Server) handleHosts(w http.ResponseWriter, r *http.Request) {
	type hostInfo struct {
		ID    string   `json:"id"`
		Files []string `json:"files"`
	}
	if s.coll == nil {
		writeJSONError(w, http.StatusNotFound, "no collection plane attached to this dashboard")
		return
	}
	out := make([]hostInfo, 0, len(s.hosts))
	for _, id := range s.hosts {
		out = append(out, hostInfo{ID: id, Files: s.coll.Mirror(id).Names()})
	}
	writeJSON(w, out)
}

func (s *Server) handleRounds(w http.ResponseWriter, r *http.Request) {
	if s.coll == nil {
		writeJSONError(w, http.StatusNotFound, "no collection plane attached to this dashboard")
		return
	}
	writeJSON(w, s.coll.History())
}

func (s *Server) handleGaps(w http.ResponseWriter, r *http.Request) {
	if s.gaps == nil {
		// Explicit JSON 404: "this deployment has no gap ledger" is an
		// answer, not a routing miss, and API clients should be able to
		// decode it like every other /api response.
		writeJSONError(w, http.StatusNotFound, "no gap ledger attached to this collector")
		return
	}
	writeJSON(w, struct {
		Rounds   int               `json:"rounds"`
		Coverage float64           `json:"coverage"`
		Hosts    []monitor.HostGap `json:"hosts"`
	}{s.gaps.Rounds(), s.gaps.Coverage(), s.gaps.Hosts()})
}

func (s *Server) handleLedger(w http.ResponseWriter, r *http.Request) {
	if s.coll == nil {
		writeJSONError(w, http.StatusNotFound, "no collection plane attached to this dashboard")
		return
	}
	host := r.PathValue("host")
	if !s.knownHost(host) {
		writeJSONError(w, http.StatusNotFound, "unknown host "+host)
		return
	}
	sum, err := monitor.ParseLedger(s.coll.Mirror(host).Get(monitor.MD5Log))
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, sum)
}

// SeriesPoint is one sample in an /api/series response.
type SeriesPoint struct {
	At    time.Time `json:"at"`
	Value float64   `json:"value"`
}

// SeriesWindow is the /api/series/{host}/{metric} response shape. It is
// exported so regression tests (and clients) can marshal the reference
// representation through the exact same encoder.
type SeriesWindow struct {
	Series string        `json:"series"`
	Points []SeriesPoint `json:"points"`
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	if s.coll == nil {
		writeJSONError(w, http.StatusNotFound, "no sample plane attached to this collector")
		return
	}
	db := s.coll.Samples()
	if db == nil {
		writeJSONError(w, http.StatusNotFound, "no sample plane attached to this collector")
		return
	}
	type seriesInfo struct {
		Series          string    `json:"series"`
		Samples         int64     `json:"samples"`
		Blocks          int       `json:"blocks"`
		CompressedBytes int64     `json:"compressed_bytes"`
		From            time.Time `json:"from"`
		To              time.Time `json:"to"`
	}
	infos := db.Store().Series()
	out := make([]seriesInfo, 0, len(infos))
	for _, in := range infos {
		out = append(out, seriesInfo{
			Series:          in.Name,
			Samples:         in.Samples,
			Blocks:          in.Blocks,
			CompressedBytes: in.CompressedBytes,
			From:            time.Unix(0, in.MinTime).UTC(),
			To:              time.Unix(0, in.MaxTime).UTC(),
		})
	}
	writeJSON(w, out)
}

func (s *Server) handleSeriesWindow(w http.ResponseWriter, r *http.Request) {
	if s.coll == nil {
		writeJSONError(w, http.StatusNotFound, "no sample plane attached to this collector")
		return
	}
	db := s.coll.Samples()
	if db == nil {
		writeJSONError(w, http.StatusNotFound, "no sample plane attached to this collector")
		return
	}
	name := r.PathValue("host") + "/" + r.PathValue("metric")
	from, to := int64(math.MinInt64), int64(math.MaxInt64)
	if q := r.URL.Query().Get("from"); q != "" {
		at, err := time.Parse(time.RFC3339, q)
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, "bad from: "+err.Error())
			return
		}
		from = at.UnixNano()
	}
	if q := r.URL.Query().Get("to"); q != "" {
		at, err := time.Parse(time.RFC3339, q)
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, "bad to: "+err.Error())
			return
		}
		to = at.UnixNano()
	}
	it, err := db.Store().Query(name, from, to)
	if err != nil {
		writeJSONError(w, http.StatusNotFound, "unknown series "+name)
		return
	}
	// Stream straight off the compressed blocks: a long window never
	// materialises as a []SeriesPoint on the monitoring host, only as
	// bytes in flight. The byte layout replicates writeJSON's encoder
	// (SetIndent("", " ")) exactly — TestSeriesWindowStreamsIdenticalBytes
	// holds the two paths together — so clients cannot tell the paths
	// apart.
	w.Header().Set("Content-Type", "application/json")
	bw := bufio.NewWriter(w)
	nameJSON, err := json.Marshal(name)
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	bw.WriteString("{\n \"series\": ")
	bw.Write(nameJSON)
	bw.WriteString(",\n \"points\": [")
	n := 0
	for it.Next() {
		t, v := it.At()
		p, err := json.MarshalIndent(SeriesPoint{At: time.Unix(0, t).UTC(), Value: v}, "  ", " ")
		if err != nil {
			// Headers are long gone; truncating the body is the only
			// honest failure signal left.
			return
		}
		if n > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n  ")
		bw.Write(p)
		n++
	}
	if it.Err() != nil {
		return
	}
	if n > 0 {
		bw.WriteString("\n ]")
	} else {
		bw.WriteString("]")
	}
	bw.WriteString("\n}\n")
	_ = bw.Flush()
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if s.rules == nil {
		writeJSONError(w, http.StatusNotFound, "no rules engine attached to this dashboard")
		return
	}
	alerts := s.rules.ActiveAlerts()
	pending, firing := 0, 0
	for _, a := range alerts {
		if a.State == rules.StateFiring.String() {
			firing++
		} else {
			pending++
		}
	}
	writeJSON(w, struct {
		Pending int                 `json:"pending"`
		Firing  int                 `json:"firing"`
		Alerts  []rules.AlertStatus `json:"alerts"`
	}{pending, firing, alerts})
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	if s.rules == nil {
		writeJSONError(w, http.StatusNotFound, "no rules engine attached to this dashboard")
		return
	}
	writeJSON(w, s.rules.RuleStatuses())
}

func (s *Server) handleIncidents(w http.ResponseWriter, r *http.Request) {
	if s.rules == nil {
		writeJSONError(w, http.StatusNotFound, "no rules engine attached to this dashboard")
		return
	}
	writeJSON(w, struct {
		Incidents rules.IncidentLog `json:"incidents"`
		Timeline  []rules.Event     `json:"timeline"`
	}{s.rules.Incidents(), s.rules.Timeline()})
}

func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	if s.coll == nil {
		http.Error(w, "no collection plane", http.StatusNotFound)
		return
	}
	host := r.PathValue("host")
	file := r.PathValue("file")
	if !s.knownHost(host) {
		http.Error(w, "unknown host", http.StatusNotFound)
		return
	}
	data := s.coll.Mirror(host).Get(file)
	if data == nil {
		http.Error(w, "no such log", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write(data)
}

func (s *Server) knownHost(id string) bool {
	for _, h := range s.hosts {
		if h == id {
			return true
		}
	}
	return false
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeJSONError sends {"error": msg} with the given status.
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{msg})
}
