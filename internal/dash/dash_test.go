package dash

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"frostlab/internal/monitor"
	"frostlab/internal/telemetry"
)

var t0 = time.Date(2010, time.February, 19, 12, 0, 0, 0, time.UTC)

// seededServer builds a dashboard over a collector with mirrored content.
func seededServer(t *testing.T) (*httptest.Server, *monitor.Collector) {
	t.Helper()
	coll := monitor.NewCollector(0)
	m := coll.Mirror("01")
	m.Put(monitor.MD5Log, []byte(
		"2010-02-19T12:10:00Z OK d41d8cd98f00b204e9800998ecf8427e\n"+
			"2010-02-19T12:20:00Z BAD 900150983cd24fb0d6963f7d28e17f72 (1 of 20)\n"))
	m.Put(monitor.SensorLog, []byte("2010-02-19T12:10:00Z cpu=-4.1\n"))
	coll.Mirror("02").Put(monitor.MD5Log, []byte("2010-02-19T12:10:00Z OK d41d8cd98f00b204e9800998ecf8427e\n"))
	srv := httptest.NewServer(NewServer(coll, []string{"01", "02"}, t0).Handler())
	t.Cleanup(srv.Close)
	return srv, coll
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestIndexOverview(t *testing.T) {
	srv, _ := seededServer(t)
	code, body := get(t, srv.URL+"/")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"monitoring host", "01", "02", "md5 OK"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q:\n%s", want, body)
		}
	}
}

func TestHealthz(t *testing.T) {
	srv, _ := seededServer(t)
	code, body := get(t, srv.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthz %d %q", code, body)
	}
}

func TestAPIHosts(t *testing.T) {
	srv, _ := seededServer(t)
	code, body := get(t, srv.URL+"/api/hosts")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var hosts []struct {
		ID    string   `json:"id"`
		Files []string `json:"files"`
	}
	if err := json.Unmarshal([]byte(body), &hosts); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(hosts) != 2 || hosts[0].ID != "01" {
		t.Errorf("hosts %+v", hosts)
	}
	if len(hosts[0].Files) != 2 {
		t.Errorf("host 01 files %v", hosts[0].Files)
	}
}

func TestAPILedger(t *testing.T) {
	srv, _ := seededServer(t)
	code, body := get(t, srv.URL+"/api/ledger/01")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var sum monitor.LedgerSummary
	if err := json.Unmarshal([]byte(body), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.OK != 1 || sum.Bad != 1 {
		t.Errorf("ledger %+v", sum)
	}
	if code, _ := get(t, srv.URL+"/api/ledger/zz"); code != http.StatusNotFound {
		t.Errorf("unknown host status %d", code)
	}
}

func TestLogsEndpoint(t *testing.T) {
	srv, _ := seededServer(t)
	code, body := get(t, srv.URL+"/logs/01/"+monitor.SensorLog)
	if code != http.StatusOK || !strings.Contains(body, "cpu=-4.1") {
		t.Errorf("log fetch %d %q", code, body)
	}
	if code, _ := get(t, srv.URL+"/logs/01/secrets.txt"); code != http.StatusNotFound {
		t.Errorf("missing file status %d", code)
	}
	if code, _ := get(t, srv.URL+"/logs/zz/"+monitor.MD5Log); code != http.StatusNotFound {
		t.Errorf("unknown host status %d", code)
	}
}

func TestAPIRounds(t *testing.T) {
	srv, coll := seededServer(t)
	_ = coll
	code, body := get(t, srv.URL+"/api/rounds")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var rounds []monitor.RoundStats
	if err := json.Unmarshal([]byte(body), &rounds); err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 0 {
		t.Errorf("expected no rounds yet, got %d", len(rounds))
	}
}

func TestMethodAndPathRestrictions(t *testing.T) {
	srv, _ := seededServer(t)
	resp, err := http.Post(srv.URL+"/api/hosts", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status %d, want 405", resp.StatusCode)
	}
	if code, _ := get(t, srv.URL+"/nonsense"); code != http.StatusNotFound {
		t.Errorf("unknown path status %d", code)
	}
}

// TestEndpointTable is the one-row-per-endpoint contract: method, path,
// status, content type, and format validity (JSON decodes; /metrics
// survives the telemetry text-format parser).
func TestEndpointTable(t *testing.T) {
	coll := monitor.NewCollector(0)
	coll.Mirror("01").Put(monitor.MD5Log, []byte("2010-02-19T12:10:00Z OK d41d8cd98f00b204e9800998ecf8427e\n"))
	g := monitor.NewGapLedger()
	g.Record(monitor.RoundReport{Round: 1, Hosts: []monitor.HostOutcome{{HostID: "01", Status: monitor.StatusOK}}})
	reg := telemetry.NewRegistry()
	reg.NewCounter("dash_test_total", "test counter").Inc()

	full := NewServer(coll, []string{"01"}, t0).WithLedger(g).WithTelemetry(reg)
	bare := NewServer(coll, []string{"01"}, t0)

	const jsonCT = "application/json"
	tests := []struct {
		name     string
		srv      *Server
		method   string
		path     string
		status   int
		ct       string
		wantJSON bool // body must decode as JSON (errors included)
		wantProm bool // body must pass the Prometheus text parser
		inBody   string
	}{
		{name: "index", srv: full, method: "GET", path: "/", status: 200, ct: "text/plain; charset=utf-8", inBody: "monitoring host"},
		{name: "healthz", srv: full, method: "GET", path: "/healthz", status: 200, ct: "text/plain; charset=utf-8", inBody: "ok"},
		{name: "buildinfo", srv: full, method: "GET", path: "/buildinfo", status: 200, ct: jsonCT, wantJSON: true, inBody: "go_version"},
		{name: "metrics", srv: full, method: "GET", path: "/metrics", status: 200, ct: telemetry.TextContentType, wantProm: true, inBody: "dash_test_total 1"},
		{name: "metrics absent without registry", srv: bare, method: "GET", path: "/metrics", status: 404},
		{name: "api hosts", srv: full, method: "GET", path: "/api/hosts", status: 200, ct: jsonCT, wantJSON: true},
		{name: "api rounds", srv: full, method: "GET", path: "/api/rounds", status: 200, ct: jsonCT, wantJSON: true},
		{name: "api gaps", srv: full, method: "GET", path: "/api/gaps", status: 200, ct: jsonCT, wantJSON: true, inBody: `"coverage"`},
		{name: "api gaps without ledger", srv: bare, method: "GET", path: "/api/gaps", status: 404, ct: jsonCT, wantJSON: true, inBody: `"error"`},
		{name: "api ledger", srv: full, method: "GET", path: "/api/ledger/01", status: 200, ct: jsonCT, wantJSON: true},
		{name: "api ledger unknown host", srv: full, method: "GET", path: "/api/ledger/zz", status: 404, ct: jsonCT, wantJSON: true, inBody: `"error"`},
		{name: "logs", srv: full, method: "GET", path: "/logs/01/" + monitor.MD5Log, status: 200, ct: "text/plain; charset=utf-8", inBody: "OK"},
		{name: "logs unknown file", srv: full, method: "GET", path: "/logs/01/nope", status: 404},
		{name: "post rejected", srv: full, method: "POST", path: "/api/hosts", status: 405},
		{name: "unknown path", srv: full, method: "GET", path: "/nonsense", status: 404},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewServer(tc.srv.Handler())
			defer srv.Close()
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d; body:\n%s", resp.StatusCode, tc.status, body)
			}
			if tc.ct != "" && resp.Header.Get("Content-Type") != tc.ct {
				t.Errorf("content type = %q, want %q", resp.Header.Get("Content-Type"), tc.ct)
			}
			if tc.wantJSON {
				var v any
				if err := json.Unmarshal(body, &v); err != nil {
					t.Errorf("body is not JSON: %v\n%s", err, body)
				}
			}
			if tc.wantProm {
				if _, err := telemetry.ParseText(string(body)); err != nil {
					t.Errorf("/metrics body invalid: %v\n%s", err, body)
				}
			}
			if tc.inBody != "" && !strings.Contains(string(body), tc.inBody) {
				t.Errorf("body missing %q:\n%s", tc.inBody, body)
			}
		})
	}
}

func TestAPIGaps(t *testing.T) {
	// Without a ledger the endpoint is absent.
	srv, _ := seededServer(t)
	if code, _ := get(t, srv.URL+"/api/gaps"); code != http.StatusNotFound {
		t.Errorf("gaps without ledger status %d, want 404", code)
	}

	// With one, it serves the per-host accounting and the overview gains a
	// coverage line.
	coll := monitor.NewCollector(0)
	g := monitor.NewGapLedger()
	g.Record(monitor.RoundReport{Round: 1, Hosts: []monitor.HostOutcome{
		{HostID: "01", Status: monitor.StatusOK},
		{HostID: "02", Status: monitor.StatusFailed, Err: "host offline"},
	}})
	srv2 := httptest.NewServer(NewServer(coll, []string{"01", "02"}, t0).WithLedger(g).Handler())
	t.Cleanup(srv2.Close)

	code, body := get(t, srv2.URL+"/api/gaps")
	if code != http.StatusOK {
		t.Fatalf("gaps status %d", code)
	}
	var out struct {
		Rounds   int               `json:"rounds"`
		Coverage float64           `json:"coverage"`
		Hosts    []monitor.HostGap `json:"hosts"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if out.Rounds != 1 || out.Coverage != 0.5 || len(out.Hosts) != 2 {
		t.Errorf("gaps = %+v", out)
	}
	if out.Hosts[1].HostID != "02" || out.Hosts[1].Missed != 1 {
		t.Errorf("host 02 gap = %+v", out.Hosts[1])
	}
	if _, idx := get(t, srv2.URL+"/"); !strings.Contains(idx, "fleet coverage: 0.5000") {
		t.Errorf("index missing coverage line:\n%s", idx)
	}
}
