package dash

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"frostlab/internal/monitor"
	"frostlab/internal/rules"
)

// bufferedWindowJSON renders what the pre-streaming handler produced:
// materialise every point, then marshal through writeJSON's encoder.
// The streaming handler must emit these exact bytes.
func bufferedWindowJSON(t *testing.T, db *monitor.SampleDB, series string, from, to int64) string {
	t.Helper()
	it, err := db.Store().Query(series, from, to)
	if err != nil {
		t.Fatalf("Query(%s): %v", series, err)
	}
	out := SeriesWindow{Series: series, Points: []SeriesPoint{}}
	for it.Next() {
		ts, v := it.At()
		out.Points = append(out.Points, SeriesPoint{At: time.Unix(0, ts).UTC(), Value: v})
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestSeriesWindowStreamsIdenticalBytes(t *testing.T) {
	// 3000 samples: multiple sealed blocks plus a live head, so the
	// stream crosses every decode path.
	raw := sampleLog(3000)
	db := monitor.NewSampleDB()
	db.Ingest("01", monitor.SensorLog, raw)
	coll := monitor.NewCollector(0).WithSamples(db)
	srv := httptest.NewServer(NewServer(coll, []string{"01"}, t0).Handler())
	t.Cleanup(srv.Close)

	cases := []struct {
		name     string
		from, to time.Time
	}{
		{"full-range", time.Time{}, time.Time{}},
		{"windowed", t0.Add(24 * time.Hour), t0.Add(48 * time.Hour)},
		{"single-point", t0, t0},
		{"empty-window", t0.AddDate(10, 0, 0), t0.AddDate(11, 0, 0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			url := srv.URL + "/api/series/01/cpu"
			qFrom, qTo := int64(-1<<63), int64(1<<63-1)
			if !tc.from.IsZero() {
				url += "?from=" + tc.from.Format(time.RFC3339) + "&to=" + tc.to.Format(time.RFC3339)
				qFrom, qTo = tc.from.UnixNano(), tc.to.UnixNano()
			}
			code, body := get(t, url)
			if code != http.StatusOK {
				t.Fatalf("status %d: %s", code, body)
			}
			want := bufferedWindowJSON(t, db, "01/cpu", qFrom, qTo)
			if body != want {
				t.Fatalf("streamed bytes diverge from buffered encoder\ngot  %q\nwant %q", body, want)
			}
		})
	}
}

// rulesServer builds a dashboard with a one-rule engine whose gauge the
// test controls, evaluated once so the alert is firing.
func rulesServer(t *testing.T) (*httptest.Server, *rules.Engine) {
	t.Helper()
	set := rules.MustParse("alert hot value($temp) > 20 severity page\nrecord temp_copy value($temp)\n")
	db := monitor.NewSampleDB()
	eng := rules.NewEngine(set, db.Store()).Live("temp", func() float64 { return 25 })
	eng.Eval(t0)
	coll := monitor.NewCollector(0).WithSamples(db)
	srv := httptest.NewServer(NewServer(coll, []string{"01"}, t0).WithRules(eng).Handler())
	t.Cleanup(srv.Close)
	return srv, eng
}

func TestAPIAlerts(t *testing.T) {
	srv, _ := rulesServer(t)
	code, body := get(t, srv.URL+"/api/alerts")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var out struct {
		Pending int                 `json:"pending"`
		Firing  int                 `json:"firing"`
		Alerts  []rules.AlertStatus `json:"alerts"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if out.Firing != 1 || out.Pending != 0 || len(out.Alerts) != 1 {
		t.Fatalf("alerts %+v", out)
	}
	a := out.Alerts[0]
	if a.Rule != "hot" || a.State != "firing" || a.Severity != "page" || a.Value != 25 {
		t.Fatalf("alert %+v", a)
	}
}

func TestAPIRules(t *testing.T) {
	srv, _ := rulesServer(t)
	code, body := get(t, srv.URL+"/api/rules")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var out []rules.RuleStatus
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(out) != 2 || out[0].Name != "hot" || out[0].Kind != "alert" ||
		out[0].Firing != 1 || out[1].Name != "temp_copy" || out[1].Kind != "record" {
		t.Fatalf("rules %+v", out)
	}
	if !strings.Contains(out[0].Expr, "value($temp)") {
		t.Fatalf("expr %q", out[0].Expr)
	}
}

func TestAPIIncidents(t *testing.T) {
	srv, _ := rulesServer(t)
	code, body := get(t, srv.URL+"/api/incidents")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var out struct {
		Incidents rules.IncidentLog `json:"incidents"`
		Timeline  []rules.Event     `json:"timeline"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(out.Incidents.Open) != 1 || out.Incidents.Total != 1 {
		t.Fatalf("incidents %+v", out.Incidents)
	}
	if len(out.Timeline) != 1 || out.Timeline[0].Kind != rules.EvFiring {
		t.Fatalf("timeline %+v", out.Timeline)
	}
}

func TestRulesEndpointsWithoutEngine(t *testing.T) {
	srv, _ := seededServer(t)
	for _, ep := range []string{"/api/alerts", "/api/rules", "/api/incidents"} {
		code, body := get(t, srv.URL+ep)
		if code != http.StatusNotFound || !strings.Contains(body, "no rules engine") {
			t.Errorf("%s without engine: status %d body %s", ep, code, body)
		}
	}
}

func TestAlertsBypassAdmissionGate(t *testing.T) {
	set := rules.MustParse("alert hot value($temp) > 20 severity page\n")
	db := monitor.NewSampleDB()
	eng := rules.NewEngine(set, db.Store()).Live("temp", func() float64 { return 25 })
	eng.Eval(t0)
	coll := monitor.NewCollector(0).WithSamples(db)
	s := NewServer(coll, []string{"01"}, t0).WithRules(eng).WithAdmission(1, time.Second)
	h := s.Handler()

	// Park a handler mid-response so the single slot stays occupied.
	bw := newBlockingWriter()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(bw, httptest.NewRequest("GET", "/", nil))
	}()
	<-bw.entered

	// Ordinary API reads shed; the alert view answers anyway — overload
	// is exactly when the operator needs it.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/rules", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/api/rules during overload = %d, want 503", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/alerts", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"firing": 1`) {
		t.Fatalf("/api/alerts during overload = %d body %s", rec.Code, rec.Body.String())
	}

	close(bw.release)
	<-done
}

// TestStreamingHandlesManyBlocks pushes well past the alloc-visible
// range: the handler must not materialise the window. This is a smoke
// bound, not a benchmark — the point is that response size no longer
// implies a same-sized server-side buffer.
func TestStreamingHandlesManyBlocks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	raw := sampleLog(10_000)
	db := monitor.NewSampleDB()
	db.Ingest("01", monitor.SensorLog, raw)
	coll := monitor.NewCollector(0).WithSamples(db)
	srv := httptest.NewServer(NewServer(coll, []string{"01"}, t0).Handler())
	t.Cleanup(srv.Close)
	code, body := get(t, srv.URL+"/api/series/01/cpu")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if n := strings.Count(body, `"at"`); n != 10_000 {
		t.Fatalf("streamed %d points, want 10000", n)
	}
	if !strings.HasSuffix(body, "\n}\n") {
		t.Fatalf("body tail %q", body[len(body)-8:])
	}
	var out SeriesWindow
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("streamed body is not valid JSON: %v", err)
	}
	if len(out.Points) != 10_000 {
		t.Fatalf("decoded %d points", len(out.Points))
	}
}
