package delta

import (
	"bytes"
	"testing"
)

func TestSignatureMarshalRoundTrip(t *testing.T) {
	data := randBytes(10*1024 + 300)
	sig, err := NewSignature(data, 1024)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSignature(sig.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.BlockSize != sig.BlockSize || back.FileLen != sig.FileLen || len(back.Blocks) != len(sig.Blocks) {
		t.Fatalf("header mismatch: %+v vs %+v", back, sig)
	}
	for i := range sig.Blocks {
		if back.Blocks[i] != sig.Blocks[i] {
			t.Fatalf("block %d differs", i)
		}
	}
	// The round-tripped signature must drive a working delta.
	new := append(append([]byte(nil), data...), []byte("tail")...)
	d, err := Compute(back, new)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Apply(data, d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, new) {
		t.Error("reconstruction via marshalled signature differs")
	}
}

func TestSignatureMarshalEmpty(t *testing.T) {
	sig, err := NewSignature(nil, 512)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSignature(sig.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Blocks) != 0 || back.FileLen != 0 {
		t.Errorf("empty signature round trip: %+v", back)
	}
}

func TestUnmarshalSignatureRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		bytes.Repeat([]byte{0xee}, 48), // implausible sizes
	}
	for _, c := range cases {
		if _, err := UnmarshalSignature(c); err == nil {
			t.Errorf("garbage of %d bytes accepted", len(c))
		}
	}
	// Trailing bytes.
	sig, _ := NewSignature(randBytes(2048), 1024)
	if _, err := UnmarshalSignature(append(sig.Marshal(), 0x00)); err == nil {
		t.Error("trailing byte accepted")
	}
}
