package delta_test

import (
	"bytes"
	"fmt"

	"frostlab/internal/delta"
)

// The §3.5 monitoring use case: an append-only sensor log re-synced each
// round. Only the appended tail travels.
func ExampleSync() {
	old := bytes.Repeat([]byte("2010-02-19T12:00:00Z cpu=-4.1\n"), 1000)
	updated := append(append([]byte(nil), old...),
		[]byte("2010-02-19T12:15:00Z cpu=-4.3\n")...)

	got, literalBytes, err := delta.Sync(old, updated, delta.DefaultBlockSize)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("reconstructed %v bytes correctly: %v\n", len(got), bytes.Equal(got, updated))
	fmt.Printf("full copy would move %d bytes; the delta moved %d\n", len(updated), literalBytes)
	// Output:
	// reconstructed 30030 bytes correctly: true
	// full copy would move 30030 bytes; the delta moved 1358
}

// The three-step protocol as it runs over the wire: the receiver
// signs its old copy, the sender computes a delta, the receiver patches.
func ExampleCompute() {
	receiverCopy := []byte("the quick brown fox jumps over the lazy dog")
	senderFile := []byte("the quick brown fox jumps over the lazy dog, twice")

	sig, _ := delta.NewSignature(receiverCopy, 16)
	d, _ := delta.Compute(sig, senderFile)
	patched, _ := delta.Apply(receiverCopy, d)
	fmt.Println(string(patched))
	// Output:
	// the quick brown fox jumps over the lazy dog, twice
}
