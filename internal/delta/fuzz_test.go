package delta

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalDelta hardens the wire decoder: arbitrary bytes must never
// panic, and any delta that does decode must round-trip through Marshal.
func FuzzUnmarshalDelta(f *testing.F) {
	old := randBytes(8 << 10)
	new := append(append([]byte(nil), old...), []byte("tail data")...)
	sig, err := NewSignature(old, 1024)
	if err != nil {
		f.Fatal(err)
	}
	d, err := Compute(sig, new)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(d.Marshal())
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Add(bytes.Repeat([]byte{0xff}, 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := UnmarshalDelta(data)
		if err != nil {
			return
		}
		re, err := UnmarshalDelta(parsed.Marshal())
		if err != nil {
			t.Fatalf("re-unmarshal of valid delta failed: %v", err)
		}
		if re.NewLen != parsed.NewLen || len(re.Ops) != len(parsed.Ops) {
			t.Fatal("marshal round trip changed the delta")
		}
	})
}

// FuzzUnmarshalSignature does the same for signatures.
func FuzzUnmarshalSignature(f *testing.F) {
	sig, err := NewSignature(randBytes(4096), 512)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sig.Marshal())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x01}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := UnmarshalSignature(data)
		if err != nil {
			return
		}
		if _, err := UnmarshalSignature(parsed.Marshal()); err != nil {
			t.Fatalf("re-unmarshal of valid signature failed: %v", err)
		}
	})
}
