package delta

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Marshal serialises a signature for the wire: the receiver sends it to
// the sender so the sender can compute a delta.
func (s *Signature) Marshal() []byte {
	var buf bytes.Buffer
	var scratch [8]byte
	putUint := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:], v)
		buf.Write(scratch[:])
	}
	putUint(uint64(s.BlockSize))
	putUint(uint64(s.FileLen))
	putUint(uint64(len(s.Blocks)))
	for _, b := range s.Blocks {
		putUint(uint64(b.Index))
		binary.BigEndian.PutUint32(scratch[:4], b.Weak)
		buf.Write(scratch[:4])
		buf.Write(b.Strong[:])
	}
	return buf.Bytes()
}

// UnmarshalSignature parses a serialised signature.
func UnmarshalSignature(p []byte) (*Signature, error) {
	r := bytes.NewReader(p)
	var scratch [8]byte
	getUint := func() (uint64, error) {
		if _, err := io.ReadFull(r, scratch[:]); err != nil {
			return 0, err
		}
		return binary.BigEndian.Uint64(scratch[:]), nil
	}
	bs, err := getUint()
	if err != nil {
		return nil, fmt.Errorf("delta: unmarshal signature block size: %w", err)
	}
	if bs == 0 || bs > 1<<30 {
		return nil, fmt.Errorf("delta: implausible signature block size %d", bs)
	}
	fl, err := getUint()
	if err != nil {
		return nil, err
	}
	n, err := getUint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(p)) {
		return nil, fmt.Errorf("delta: implausible signature block count %d", n)
	}
	sig := &Signature{BlockSize: int(bs), FileLen: int(fl)}
	for i := uint64(0); i < n; i++ {
		idx, err := getUint()
		if err != nil {
			return nil, err
		}
		if _, err := io.ReadFull(r, scratch[:4]); err != nil {
			return nil, err
		}
		b := BlockSig{Index: int(idx), Weak: binary.BigEndian.Uint32(scratch[:4])}
		if _, err := io.ReadFull(r, b.Strong[:]); err != nil {
			return nil, err
		}
		sig.Blocks = append(sig.Blocks, b)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("delta: %d trailing signature bytes", r.Len())
	}
	return sig, nil
}
