// Package delta implements the rsync algorithm used by the experiment's
// monitoring plane: the paper's monitoring host pulled md5sums and sensor
// data from every machine "using public-key authentication through an
// OpenSSH tunnel, and new files are transferred by the rsync program"
// (§3.5). This package is the rsync part, built from scratch on the
// standard library:
//
//   - Signature: the receiver summarises the old file as per-block
//     (rolling weak checksum, strong md5) pairs;
//   - Delta: the sender scans the new file with a byte-granular rolling
//     window, matching blocks the receiver already has and emitting
//     literal data only for what changed;
//   - Patch: the receiver reconstructs the new file from its old file and
//     the delta.
//
// The weak checksum is the classic two-part Adler-style sum that can be
// rolled forward one byte in O(1).
package delta

import (
	"bytes"
	"crypto/md5"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// DefaultBlockSize is the signature block size. rsync's own default is
// around 700 bytes for small files; 2 KiB suits the sensor logs and
// md5sum ledgers this package moves.
const DefaultBlockSize = 2048

const weakMod = 1 << 16

// WeakSum computes the rolling weak checksum of a block: the low 16 bits
// hold the byte sum, the high 16 bits the position-weighted sum.
func WeakSum(p []byte) uint32 {
	var a, b uint32
	n := len(p)
	for i, x := range p {
		a += uint32(x)
		b += uint32(n-i) * uint32(x)
	}
	a %= weakMod
	b %= weakMod
	return a | b<<16
}

// roll advances a weak checksum one byte: remove out (leaving the window),
// add in (entering it), for a window of length n.
func roll(sum uint32, out, in byte, n int) uint32 {
	a := sum & 0xffff
	b := sum >> 16
	a = (a + weakMod - uint32(out) + uint32(in)) % weakMod
	b = (b + weakMod - uint32(n)*uint32(out)%weakMod + a) % weakMod
	return a | b<<16
}

// BlockSig is the signature of one block of the old file.
type BlockSig struct {
	Index  int
	Weak   uint32
	Strong [md5.Size]byte
}

// Signature summarises a file for the delta computation.
type Signature struct {
	BlockSize int
	// FileLen is the old file's length; the final block may be short.
	FileLen int
	Blocks  []BlockSig
}

// NewSignature computes the signature of old with the given block size.
func NewSignature(old []byte, blockSize int) (*Signature, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("delta: non-positive block size %d", blockSize)
	}
	sig := &Signature{BlockSize: blockSize, FileLen: len(old)}
	for i := 0; i < len(old); i += blockSize {
		end := i + blockSize
		if end > len(old) {
			end = len(old)
		}
		blk := old[i:end]
		sig.Blocks = append(sig.Blocks, BlockSig{
			Index:  i / blockSize,
			Weak:   WeakSum(blk),
			Strong: md5.Sum(blk),
		})
	}
	return sig, nil
}

// OpKind distinguishes delta operations.
type OpKind byte

// Delta operations.
const (
	// OpCopy references a run of consecutive blocks of the old file.
	OpCopy OpKind = 1
	// OpLiteral carries new data verbatim.
	OpLiteral OpKind = 2
)

// Op is one delta instruction.
type Op struct {
	Kind OpKind
	// Block and NumBlocks define a copy run.
	Block     int
	NumBlocks int
	// Data is the literal payload.
	Data []byte
}

// Delta is the instruction stream turning the old file into the new one.
type Delta struct {
	BlockSize int
	Ops       []Op
	// NewLen is the target length, used as a patch sanity check.
	NewLen int
	// NewMD5 verifies the reconstruction end to end.
	NewMD5 [md5.Size]byte
}

// LiteralBytes returns how many bytes travel as literals — the measure of
// how much the delta saved versus a full transfer.
func (d *Delta) LiteralBytes() int {
	n := 0
	for _, op := range d.Ops {
		if op.Kind == OpLiteral {
			n += len(op.Data)
		}
	}
	return n
}

// Compute builds the delta that transforms the signed old file into new.
func Compute(sig *Signature, new []byte) (*Delta, error) {
	if sig == nil || sig.BlockSize <= 0 {
		return nil, errors.New("delta: nil or invalid signature")
	}
	bs := sig.BlockSize
	// Index the signature by weak sum for O(1) candidate lookup.
	byWeak := make(map[uint32][]BlockSig, len(sig.Blocks))
	for _, b := range sig.Blocks {
		// Only full-size blocks are matchable by the rolling window; a
		// short final block is handled implicitly via literals.
		if b.Index*bs+bs <= sig.FileLen {
			byWeak[b.Weak] = append(byWeak[b.Weak], b)
		}
	}
	d := &Delta{BlockSize: bs, NewLen: len(new), NewMD5: md5.Sum(new)}
	var litStart int
	emitLiteral := func(upTo int) {
		if upTo > litStart {
			d.Ops = append(d.Ops, Op{Kind: OpLiteral, Data: append([]byte(nil), new[litStart:upTo]...)})
		}
	}
	emitCopy := func(block int) {
		if n := len(d.Ops); n > 0 {
			last := &d.Ops[n-1]
			if last.Kind == OpCopy && last.Block+last.NumBlocks == block {
				last.NumBlocks++
				return
			}
		}
		d.Ops = append(d.Ops, Op{Kind: OpCopy, Block: block, NumBlocks: 1})
	}

	i := 0
	if len(new) >= bs && len(byWeak) > 0 {
		w := WeakSum(new[:bs])
		for i+bs <= len(new) {
			matched := -1
			if cands, ok := byWeak[w]; ok {
				strong := md5.Sum(new[i : i+bs])
				for _, c := range cands {
					if c.Strong == strong {
						matched = c.Index
						break
					}
				}
			}
			if matched >= 0 {
				emitLiteral(i)
				emitCopy(matched)
				i += bs
				litStart = i
				if i+bs <= len(new) {
					w = WeakSum(new[i : i+bs])
				}
				continue
			}
			if i+bs < len(new) {
				w = roll(w, new[i], new[i+bs], bs)
			}
			i++
		}
	}
	emitLiteral(len(new))
	return d, nil
}

// Apply reconstructs the new file from the old file and a delta.
func Apply(old []byte, d *Delta) ([]byte, error) {
	if d == nil {
		return nil, errors.New("delta: nil delta")
	}
	out := make([]byte, 0, d.NewLen)
	for _, op := range d.Ops {
		switch op.Kind {
		case OpLiteral:
			out = append(out, op.Data...)
		case OpCopy:
			start := op.Block * d.BlockSize
			end := start + op.NumBlocks*d.BlockSize
			if start < 0 || end > len(old) {
				return nil, fmt.Errorf("delta: copy run [%d,%d) outside old file of %d bytes", start, end, len(old))
			}
			out = append(out, old[start:end]...)
		default:
			return nil, fmt.Errorf("delta: unknown op kind %d", op.Kind)
		}
	}
	if len(out) != d.NewLen {
		return nil, fmt.Errorf("delta: reconstructed %d bytes, want %d", len(out), d.NewLen)
	}
	if md5.Sum(out) != d.NewMD5 {
		return nil, errors.New("delta: reconstruction digest mismatch")
	}
	return out, nil
}

// Marshal serialises a delta for the wire.
func (d *Delta) Marshal() []byte {
	var buf bytes.Buffer
	var scratch [8]byte
	putUint := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:], v)
		buf.Write(scratch[:])
	}
	putUint(uint64(d.BlockSize))
	putUint(uint64(d.NewLen))
	buf.Write(d.NewMD5[:])
	putUint(uint64(len(d.Ops)))
	for _, op := range d.Ops {
		buf.WriteByte(byte(op.Kind))
		switch op.Kind {
		case OpCopy:
			putUint(uint64(op.Block))
			putUint(uint64(op.NumBlocks))
		case OpLiteral:
			putUint(uint64(len(op.Data)))
			buf.Write(op.Data)
		}
	}
	return buf.Bytes()
}

// UnmarshalDelta parses a serialised delta.
func UnmarshalDelta(p []byte) (*Delta, error) {
	r := bytes.NewReader(p)
	var scratch [8]byte
	getUint := func() (uint64, error) {
		if _, err := io.ReadFull(r, scratch[:]); err != nil {
			return 0, err
		}
		return binary.BigEndian.Uint64(scratch[:]), nil
	}
	bs, err := getUint()
	if err != nil {
		return nil, fmt.Errorf("delta: unmarshal block size: %w", err)
	}
	nl, err := getUint()
	if err != nil {
		return nil, fmt.Errorf("delta: unmarshal new length: %w", err)
	}
	d := &Delta{BlockSize: int(bs), NewLen: int(nl)}
	if _, err := io.ReadFull(r, d.NewMD5[:]); err != nil {
		return nil, fmt.Errorf("delta: unmarshal digest: %w", err)
	}
	nOps, err := getUint()
	if err != nil {
		return nil, fmt.Errorf("delta: unmarshal op count: %w", err)
	}
	if nOps > uint64(len(p)) {
		return nil, fmt.Errorf("delta: implausible op count %d", nOps)
	}
	for i := uint64(0); i < nOps; i++ {
		kind, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("delta: unmarshal op %d kind: %w", i, err)
		}
		switch OpKind(kind) {
		case OpCopy:
			blk, err := getUint()
			if err != nil {
				return nil, err
			}
			n, err := getUint()
			if err != nil {
				return nil, err
			}
			d.Ops = append(d.Ops, Op{Kind: OpCopy, Block: int(blk), NumBlocks: int(n)})
		case OpLiteral:
			n, err := getUint()
			if err != nil {
				return nil, err
			}
			if n > uint64(r.Len()) {
				return nil, fmt.Errorf("delta: literal of %d bytes exceeds remaining %d", n, r.Len())
			}
			data := make([]byte, n)
			if _, err := io.ReadFull(r, data); err != nil {
				return nil, err
			}
			d.Ops = append(d.Ops, Op{Kind: OpLiteral, Data: data})
		default:
			return nil, fmt.Errorf("delta: unknown op kind %d", kind)
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("delta: %d trailing bytes", r.Len())
	}
	return d, nil
}

// Sync is the whole-file convenience wrapper: given the receiver's old
// copy and the sender's new file, it produces (via signature and delta)
// the receiver's reconstruction, returning it together with the number of
// literal bytes that had to travel.
func Sync(old, new []byte, blockSize int) ([]byte, int, error) {
	sig, err := NewSignature(old, blockSize)
	if err != nil {
		return nil, 0, err
	}
	d, err := Compute(sig, new)
	if err != nil {
		return nil, 0, err
	}
	got, err := Apply(old, d)
	if err != nil {
		return nil, 0, err
	}
	return got, d.LiteralBytes(), nil
}
