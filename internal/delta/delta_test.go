package delta

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWeakSumRolling(t *testing.T) {
	// Rolling the window one byte must equal recomputing from scratch.
	data := []byte("the quick brown fox jumps over the lazy dog, repeatedly and at length")
	n := 16
	sum := WeakSum(data[:n])
	for i := 1; i+n <= len(data); i++ {
		sum = roll(sum, data[i-1], data[i+n-1], n)
		if want := WeakSum(data[i : i+n]); sum != want {
			t.Fatalf("rolled sum at %d = %08x, want %08x", i, sum, want)
		}
	}
}

func TestWeakSumRollingProperty(t *testing.T) {
	f := func(data []byte, winSeed uint8) bool {
		n := int(winSeed)%30 + 2
		if len(data) < n+2 {
			return true
		}
		sum := WeakSum(data[:n])
		for i := 1; i+n <= len(data); i++ {
			sum = roll(sum, data[i-1], data[i+n-1], n)
			if sum != WeakSum(data[i:i+n]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignatureBlocks(t *testing.T) {
	data := make([]byte, 10*100+37) // 10 full blocks + short tail
	sig, err := NewSignature(data, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig.Blocks) != 11 {
		t.Errorf("blocks %d, want 11", len(sig.Blocks))
	}
	if sig.FileLen != len(data) {
		t.Errorf("file len %d", sig.FileLen)
	}
	if _, err := NewSignature(data, 0); err == nil {
		t.Error("zero block size accepted")
	}
}

func TestIdenticalFilesTransferNoLiterals(t *testing.T) {
	data := randBytes(64 << 10)
	got, literals, err := Sync(data, data, DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reconstruction differs")
	}
	if literals != 0 {
		t.Errorf("identical files moved %d literal bytes, want 0", literals)
	}
}

func TestAppendOnlyTransfersTail(t *testing.T) {
	// The monitoring use case: sensor logs only grow. Only the appended
	// tail (plus at most a block of slack) should travel.
	old := randBytes(64 << 10)
	tail := randBytes(3 << 10)
	new := append(append([]byte(nil), old...), tail...)
	got, literals, err := Sync(old, new, DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, new) {
		t.Fatal("reconstruction differs")
	}
	if literals > len(tail)+DefaultBlockSize {
		t.Errorf("append moved %d literal bytes, want ≈ %d", literals, len(tail))
	}
}

func TestMiddleEditTransfersLocally(t *testing.T) {
	old := randBytes(128 << 10)
	new := append([]byte(nil), old...)
	copy(new[60<<10:], []byte("EDITED REGION"))
	got, literals, err := Sync(old, new, DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, new) {
		t.Fatal("reconstruction differs")
	}
	if literals > 3*DefaultBlockSize {
		t.Errorf("13-byte edit moved %d literal bytes", literals)
	}
}

func TestEmptyOldFallsBackToLiterals(t *testing.T) {
	new := randBytes(10 << 10)
	got, literals, err := Sync(nil, new, DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, new) {
		t.Fatal("reconstruction differs")
	}
	if literals != len(new) {
		t.Errorf("empty old: literals %d, want full %d", literals, len(new))
	}
}

func TestEmptyNew(t *testing.T) {
	got, literals, err := Sync(randBytes(4096), nil, DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || literals != 0 {
		t.Errorf("empty new: got %d bytes, %d literals", len(got), literals)
	}
}

func TestSyncRandomEditsProperty(t *testing.T) {
	f := func(seed int64, nEdits uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		old := make([]byte, 8<<10)
		rng.Read(old)
		new := append([]byte(nil), old...)
		for e := 0; e < int(nEdits)%8; e++ {
			pos := rng.Intn(len(new))
			new[pos] ^= byte(1 + rng.Intn(255))
		}
		got, _, err := Sync(old, new, 512)
		return err == nil && bytes.Equal(got, new)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestShuffledBlocksCopied(t *testing.T) {
	// Reordered content must still be found via the block map.
	blockA := bytes.Repeat([]byte("A"), DefaultBlockSize)
	blockB := bytes.Repeat([]byte("B"), DefaultBlockSize)
	blockC := bytes.Repeat([]byte("C"), DefaultBlockSize)
	old := bytes.Join([][]byte{blockA, blockB, blockC}, nil)
	new := bytes.Join([][]byte{blockC, blockA, blockB}, nil)
	got, literals, err := Sync(old, new, DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, new) {
		t.Fatal("reconstruction differs")
	}
	if literals != 0 {
		t.Errorf("shuffle moved %d literal bytes, want 0", literals)
	}
}

func TestCopyRunCoalescing(t *testing.T) {
	old := randBytes(16 * DefaultBlockSize)
	sig, err := NewSignature(old, DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compute(sig, old)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Ops) != 1 || d.Ops[0].Kind != OpCopy || d.Ops[0].NumBlocks != 16 {
		t.Errorf("identical file delta not coalesced to one copy run: %+v", d.Ops)
	}
}

func TestApplyRejectsCorruptDelta(t *testing.T) {
	old := randBytes(8 << 10)
	sig, _ := NewSignature(old, 1024)
	d, err := Compute(sig, old)
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-range copy.
	bad := *d
	bad.Ops = []Op{{Kind: OpCopy, Block: 100, NumBlocks: 1}}
	if _, err := Apply(old, &bad); err == nil {
		t.Error("out-of-range copy accepted")
	}
	// Wrong digest.
	bad = *d
	bad.NewMD5[0] ^= 0xff
	if _, err := Apply(old, &bad); err == nil {
		t.Error("digest mismatch accepted")
	}
	// Wrong length.
	bad = *d
	bad.NewLen++
	if _, err := Apply(old, &bad); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Apply(old, nil); err == nil {
		t.Error("nil delta accepted")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	old := randBytes(32 << 10)
	new := append([]byte(nil), old...)
	copy(new[10<<10:], []byte("CHANGED"))
	new = append(new, randBytes(500)...)
	sig, err := NewSignature(old, 1024)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compute(sig, new)
	if err != nil {
		t.Fatal(err)
	}
	wire := d.Marshal()
	back, err := UnmarshalDelta(wire)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Apply(old, back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, new) {
		t.Error("marshalled delta reconstruction differs")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		bytes.Repeat([]byte{0xff}, 64), // implausible op count
	}
	for _, c := range cases {
		if _, err := UnmarshalDelta(c); err == nil {
			t.Errorf("garbage %q accepted", c)
		}
	}
	// Trailing bytes after a valid delta.
	old := randBytes(2048)
	sig, _ := NewSignature(old, 1024)
	d, _ := Compute(sig, old)
	wire := append(d.Marshal(), 0xAA)
	if _, err := UnmarshalDelta(wire); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func randBytes(n int) []byte {
	rng := rand.New(rand.NewSource(42))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func BenchmarkSignature(b *testing.B) {
	data := randBytes(1 << 20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSignature(data, DefaultBlockSize); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputeAppend(b *testing.B) {
	old := randBytes(1 << 20)
	new := append(append([]byte(nil), old...), randBytes(16<<10)...)
	sig, err := NewSignature(old, DefaultBlockSize)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(new)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(sig, new); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRollingWindow(b *testing.B) {
	data := randBytes(1 << 16)
	n := DefaultBlockSize
	sum := WeakSum(data[:n])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % (len(data) - n - 1)
		sum = roll(sum, data[j], data[j+n], n)
	}
	_ = sum
}
