package wire

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
)

// pipePair returns a connected in-memory duplex pair.
func pipePair() (net.Conn, net.Conn) {
	return net.Pipe()
}

// rwShim adapts a read-only stream into the io.ReadWriter a Session needs.
type rwShim struct {
	io.Reader
}

func (rwShim) Write(p []byte) (int, error) { return len(p), nil }

type handshakeResult struct {
	sess *Session
	err  error
}

// connect runs Dial and Accept concurrently over a pipe.
func connect(t *testing.T, hostID string, clientKey []byte, keys Keystore) (*Session, *Session, error, error) {
	t.Helper()
	c, s := pipePair()
	t.Cleanup(func() { c.Close(); s.Close() })
	var wg sync.WaitGroup
	var cli, srv handshakeResult
	wg.Add(2)
	go func() {
		defer wg.Done()
		cli.sess, cli.err = Dial(c, hostID, clientKey, CounterNonce("cli"))
		if cli.err != nil {
			c.Close() // unblock a peer still waiting on the handshake
		}
	}()
	go func() {
		defer wg.Done()
		srv.sess, srv.err = Accept(s, keys, CounterNonce("srv"))
		if srv.err != nil {
			s.Close()
		}
	}()
	wg.Wait()
	return cli.sess, srv.sess, cli.err, srv.err
}

var testKeys = Keystore{"01": []byte("host-01-preshared-key")}

func TestHandshakeAndRoundTrip(t *testing.T) {
	cli, srv, cerr, serr := connect(t, "01", testKeys["01"], testKeys)
	if cerr != nil || serr != nil {
		t.Fatalf("handshake: client %v, server %v", cerr, serr)
	}
	if srv.Peer() != "01" {
		t.Errorf("server authenticated peer %q, want 01", srv.Peer())
	}
	msgs := [][]byte{[]byte("hello"), []byte(""), bytes.Repeat([]byte{0xAB}, 100000)}
	done := make(chan error, 1)
	go func() {
		for i, m := range msgs {
			if err := cli.Send(byte(i), m); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i, want := range msgs {
		ft, got, err := srv.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if ft != byte(i) || !bytes.Equal(got, want) {
			t.Fatalf("frame %d: type %d len %d", i, ft, len(got))
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestBidirectional(t *testing.T) {
	cli, srv, cerr, serr := connect(t, "01", testKeys["01"], testKeys)
	if cerr != nil || serr != nil {
		t.Fatalf("handshake: %v / %v", cerr, serr)
	}
	go func() {
		_, req, _ := srv.Recv()
		_ = srv.Send(2, append([]byte("re: "), req...))
	}()
	if err := cli.Send(1, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	ft, resp, err := cli.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ft != 2 || string(resp) != "re: ping" {
		t.Errorf("response type %d %q", ft, resp)
	}
}

func TestWrongKeyRejected(t *testing.T) {
	_, _, cerr, serr := connect(t, "01", []byte("not the right key"), testKeys)
	if serr == nil && cerr == nil {
		t.Fatal("handshake with wrong key succeeded")
	}
	// The client detects the mismatch first (the server's proof is keyed
	// differently); the server then sees the aborted connection.
	if !errors.Is(cerr, ErrAuth) {
		t.Errorf("client error %v, want ErrAuth", cerr)
	}
	if serr == nil {
		t.Error("server completed a handshake the client aborted")
	}
}

func TestUnknownHostRejected(t *testing.T) {
	_, _, _, serr := connect(t, "zz", []byte("whatever"), testKeys)
	if serr == nil {
		t.Fatal("unknown host accepted")
	}
	if !errors.Is(serr, ErrUnknownPeer) {
		t.Errorf("error %v, want ErrUnknownPeer", serr)
	}
}

func TestServerImpersonationDetected(t *testing.T) {
	// A server that doesn't know the PSK can't fake its proof.
	c, s := pipePair()
	defer c.Close()
	defer s.Close()
	go func() {
		// Malicious server: answer with garbage proof.
		_, _ = readBlob(s, 256)       // hostID
		_, _ = readBlob(s, NonceSize) // client nonce
		sn, _ := CounterNonce("evil")()
		_ = writeBlob(s, sn)
		_ = writeBlob(s, make([]byte, macSize))
	}()
	_, err := Dial(c, "01", testKeys["01"], CounterNonce("cli"))
	if !errors.Is(err, ErrAuth) {
		t.Errorf("client accepted fake server: %v", err)
	}
}

// tamperConn wraps a conn and flips a byte in the nth written frame body.
type tamperConn struct {
	net.Conn
	writes int
	target int
}

func (tc *tamperConn) Write(p []byte) (int, error) {
	tc.writes++
	if tc.writes == tc.target && len(p) > 0 {
		q := append([]byte(nil), p...)
		q[len(q)/2] ^= 0x01
		return tc.Conn.Write(q)
	}
	return tc.Conn.Write(p)
}

func TestTamperedFrameDetected(t *testing.T) {
	c, s := pipePair()
	defer c.Close()
	defer s.Close()
	var wg sync.WaitGroup
	var cli, srv handshakeResult
	wg.Add(2)
	go func() {
		defer wg.Done()
		cli.sess, cli.err = Dial(c, "01", testKeys["01"], CounterNonce("cli"))
	}()
	go func() {
		defer wg.Done()
		srv.sess, srv.err = Accept(s, testKeys, CounterNonce("srv"))
	}()
	wg.Wait()
	if cli.err != nil || srv.err != nil {
		t.Fatalf("handshake: %v / %v", cli.err, srv.err)
	}
	// Re-wrap the client side so the *payload* write (the 2nd write of the
	// first Send: header, payload, tag) is corrupted.
	cli.sess.rw = &tamperConn{Conn: c, target: 2}
	go func() { _ = cli.sess.Send(1, []byte("sensor data payload")) }()
	_, _, err := srv.sess.Recv()
	if !errors.Is(err, ErrTampered) {
		t.Errorf("tampered frame error %v, want ErrTampered", err)
	}
}

func TestReplayDetected(t *testing.T) {
	// Capture a frame's bytes and feed them twice: the second must fail
	// because the receiver's sequence number has advanced.
	var captured bytes.Buffer
	cliKey := testKeys["01"]
	// Handshake over a pipe, but then send into a buffer we control.
	c, s := pipePair()
	defer c.Close()
	defer s.Close()
	var wg sync.WaitGroup
	var cli, srv handshakeResult
	wg.Add(2)
	go func() {
		defer wg.Done()
		cli.sess, cli.err = Dial(c, "01", cliKey, CounterNonce("cli"))
	}()
	go func() {
		defer wg.Done()
		srv.sess, srv.err = Accept(s, testKeys, CounterNonce("srv"))
	}()
	wg.Wait()
	if cli.err != nil || srv.err != nil {
		t.Fatalf("handshake: %v / %v", cli.err, srv.err)
	}
	cli.sess.rw = &captured
	if err := cli.sess.Send(7, []byte("one-time report")); err != nil {
		t.Fatal(err)
	}
	frame := append([]byte(nil), captured.Bytes()...)
	srv.sess.rw = rwShim{bytes.NewReader(append(frame, frame...))} // frame twice
	if _, _, err := srv.sess.Recv(); err != nil {
		t.Fatalf("first delivery failed: %v", err)
	}
	if _, _, err := srv.sess.Recv(); !errors.Is(err, ErrTampered) {
		t.Errorf("replayed frame error %v, want ErrTampered", err)
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	cli, _, cerr, serr := connect(t, "01", testKeys["01"], testKeys)
	if cerr != nil || serr != nil {
		t.Fatalf("handshake: %v / %v", cerr, serr)
	}
	if err := cli.Send(1, make([]byte, MaxFrame+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize send error %v", err)
	}
}

func TestOversizeHeaderRejected(t *testing.T) {
	s := &Session{rw: rwShim{bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 1})}, key: []byte("k")}
	if _, _, err := s.Recv(); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize header error %v", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	s := &Session{rw: rwShim{bytes.NewReader([]byte{0, 0, 0, 5, 1, 'a', 'b'})}, key: []byte("k")}
	if _, _, err := s.Recv(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated stream error %v", err)
	}
}

func TestCounterNonceDeterministicAndDistinct(t *testing.T) {
	a, b := CounterNonce("x"), CounterNonce("x")
	n1, err := a()
	if err != nil {
		t.Fatal(err)
	}
	n2, err := b()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(n1, n2) {
		t.Error("same label first nonces differ")
	}
	n3, _ := a()
	if bytes.Equal(n1, n3) {
		t.Error("sequential nonces identical")
	}
	if len(n1) != NonceSize {
		t.Errorf("nonce size %d", len(n1))
	}
}

func TestSessionKeysDifferAcrossSessions(t *testing.T) {
	// Two handshakes with different nonces must derive different keys.
	cli1, _, e1, e2 := connect(t, "01", testKeys["01"], testKeys)
	if e1 != nil || e2 != nil {
		t.Fatal(e1, e2)
	}
	c, s := pipePair()
	defer c.Close()
	defer s.Close()
	var wg sync.WaitGroup
	var cli2 handshakeResult
	wg.Add(2)
	go func() {
		defer wg.Done()
		cli2.sess, cli2.err = Dial(c, "01", testKeys["01"], CounterNonce("other"))
	}()
	var srvErr error
	go func() {
		defer wg.Done()
		_, srvErr = Accept(s, testKeys, CounterNonce("another"))
	}()
	wg.Wait()
	if cli2.err != nil || srvErr != nil {
		t.Fatal(cli2.err, srvErr)
	}
	if bytes.Equal(cli1.key, cli2.sess.key) {
		t.Error("two sessions derived the same key")
	}
}

func TestKeystoreLookup(t *testing.T) {
	ks := Keystore{"a": []byte("ka")}
	if _, err := ks.Lookup("a"); err != nil {
		t.Error(err)
	}
	if _, err := ks.Lookup("b"); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("missing key error %v", err)
	}
}

func TestVerifyKeyEquality(t *testing.T) {
	if !VerifyKeyEquality([]byte("k"), []byte("k")) {
		t.Error("equal keys unequal")
	}
	if VerifyKeyEquality([]byte("k"), []byte("K")) {
		t.Error("unequal keys equal")
	}
	if VerifyKeyEquality([]byte("k"), []byte("kk")) {
		t.Error("different lengths equal")
	}
}

func BenchmarkSendRecv(b *testing.B) {
	c, s := pipePair()
	defer c.Close()
	defer s.Close()
	var wg sync.WaitGroup
	var cli, srv handshakeResult
	wg.Add(2)
	go func() { defer wg.Done(); cli.sess, cli.err = Dial(c, "01", testKeys["01"], CounterNonce("c")) }()
	go func() { defer wg.Done(); srv.sess, srv.err = Accept(s, testKeys, CounterNonce("s")) }()
	wg.Wait()
	if cli.err != nil || srv.err != nil {
		b.Fatal(cli.err, srv.err)
	}
	payload := bytes.Repeat([]byte("x"), 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	// One sender goroutine: a Session is not safe for concurrent Sends.
	go func() {
		for i := 0; i < b.N; i++ {
			if err := cli.sess.Send(1, payload); err != nil {
				return
			}
		}
	}()
	for i := 0; i < b.N; i++ {
		if _, _, err := srv.sess.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}
