package wire

import (
	"bytes"
	"strings"
	"testing"
)

func TestKeystoreRoundTrip(t *testing.T) {
	ks := Keystore{
		"01":  []byte("key-one"),
		"02":  []byte{0x00, 0xff, 0x10},
		"c01": []byte("control-twin"),
	}
	var buf bytes.Buffer
	if err := ks.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadKeystore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ks) {
		t.Fatalf("round trip %d entries, want %d", len(back), len(ks))
	}
	for id, key := range ks {
		got, err := back.Lookup(id)
		if err != nil {
			t.Fatalf("lookup %s: %v", id, err)
		}
		if !bytes.Equal(got, key) {
			t.Errorf("key for %s differs", id)
		}
	}
}

func TestKeystoreSaveSortedWithHeader(t *testing.T) {
	ks := Keystore{"b": []byte("x"), "a": []byte("y")}
	var buf bytes.Buffer
	if err := ks.Save(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.HasPrefix(lines[0], "#") {
		t.Error("missing comment header")
	}
	if !strings.HasPrefix(lines[1], "a ") || !strings.HasPrefix(lines[2], "b ") {
		t.Errorf("entries not sorted: %v", lines)
	}
}

func TestLoadKeystoreCommentsAndBlanks(t *testing.T) {
	in := "# comment\n\n01 6b6579\n   \n# more\n02 00ff\n"
	ks, err := LoadKeystore(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 2 {
		t.Fatalf("entries %d, want 2", len(ks))
	}
	if k, _ := ks.Lookup("01"); string(k) != "key" {
		t.Errorf("decoded key %q", k)
	}
}

func TestLoadKeystoreRejectsMalformed(t *testing.T) {
	bad := []string{
		"justanid\n",
		"01 not-hex\n",
		"01 \n",
		" 6b6579\n",
		"01 6b6579\n01 6b6579\n", // duplicate
	}
	for _, in := range bad {
		if _, err := LoadKeystore(strings.NewReader(in)); err == nil {
			t.Errorf("malformed keystore %q accepted", in)
		}
	}
}

func TestSaveRejectsWhitespaceID(t *testing.T) {
	ks := Keystore{"bad id": []byte("k")}
	if err := ks.Save(&bytes.Buffer{}); err == nil {
		t.Error("whitespace id accepted")
	}
}
