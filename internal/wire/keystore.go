package wire

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Keystore file format: one "hostID hexkey" pair per line, '#' comments
// and blank lines ignored. This is the operational glue for the real
// daemons (cmd/collectord, cmd/nodeagent), standing in for the paper's
// authorized_keys distribution.

// LoadKeystore parses a keystore from r.
func LoadKeystore(r io.Reader) (Keystore, error) {
	ks := Keystore{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		id, hexKey, ok := strings.Cut(text, " ")
		if !ok {
			return nil, fmt.Errorf("wire: keystore line %d: want \"hostID hexkey\"", line)
		}
		id = strings.TrimSpace(id)
		key, err := hex.DecodeString(strings.TrimSpace(hexKey))
		if err != nil {
			return nil, fmt.Errorf("wire: keystore line %d: %w", line, err)
		}
		if id == "" || len(key) == 0 {
			return nil, fmt.Errorf("wire: keystore line %d: empty id or key", line)
		}
		if _, dup := ks[id]; dup {
			return nil, fmt.Errorf("wire: keystore line %d: duplicate id %q", line, id)
		}
		ks[id] = key
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ks, nil
}

// Save writes the keystore in the load format, sorted by host ID.
func (ks Keystore) Save(w io.Writer) error {
	ids := make([]string, 0, len(ks))
	for id := range ks {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# frostlab monitoring keystore: hostID hexkey")
	for _, id := range ids {
		if strings.ContainsAny(id, " \n") {
			return fmt.Errorf("wire: host id %q contains whitespace", id)
		}
		fmt.Fprintf(bw, "%s %s\n", id, hex.EncodeToString(ks[id]))
	}
	return bw.Flush()
}
