package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// fuzzKey is an arbitrary fixed session key; the fuzzers exercise the
// framing layer below the handshake, so sessions are constructed directly.
var fuzzKey = []byte("fuzz-session-key-0123456789abcdef")

// readOnly adapts a reader to the Session's io.ReadWriter; the receive
// path never writes.
type readOnly struct{ *bytes.Reader }

func (readOnly) Write(p []byte) (int, error) { return len(p), nil }

// FuzzSession flips one bit of one encoded frame and requires the receiver
// to reject it with an error — never a panic, and never silent acceptance
// of tampered bytes. An untouched frame must still round-trip, anchoring
// the oracle.
func FuzzSession(f *testing.F) {
	f.Add([]byte("2010-02-19T12:10:00Z OK d41d8cd9\n"), byte(1), uint16(0), byte(0))
	f.Add([]byte{}, byte(0), uint16(4), byte(7))
	f.Add(bytes.Repeat([]byte{0xA5}, 300), byte(9), uint16(5), byte(3))
	f.Add([]byte("x"), byte(255), uint16(37), byte(6)) // inside the MAC

	f.Fuzz(func(t *testing.T, payload []byte, frameType byte, pos uint16, bit byte) {
		if len(payload) > 1<<16 {
			payload = payload[:1<<16]
		}
		var buf bytes.Buffer
		sender := &Session{rw: &buf, key: fuzzKey}
		if err := sender.Send(frameType, payload); err != nil {
			t.Fatalf("Send: %v", err)
		}
		clean := append([]byte(nil), buf.Bytes()...)

		// Sanity: the untouched frame is accepted.
		recv := &Session{rw: readOnly{bytes.NewReader(clean)}, key: fuzzKey}
		ft, pl, err := recv.Recv()
		if err != nil || ft != frameType || !bytes.Equal(pl, payload) {
			t.Fatalf("clean frame rejected: type %d payload %d bytes, err %v", ft, len(pl), err)
		}

		// Flip one bit anywhere in the frame: length, type, payload, or MAC.
		mutated := append([]byte(nil), clean...)
		mutated[int(pos)%len(mutated)] ^= 1 << (bit % 8)
		recv = &Session{rw: readOnly{bytes.NewReader(mutated)}, key: fuzzKey}
		if ft, pl, err := recv.Recv(); err == nil {
			t.Fatalf("tampered frame accepted: type %d, payload %q", ft, pl)
		} else if !errors.Is(err, ErrTampered) && !errors.Is(err, ErrTooLarge) &&
			!errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
			t.Fatalf("tampered frame error %v, want a typed wire/io error", err)
		}
	})
}

// FuzzRecvArbitrary feeds raw attacker-controlled bytes to Recv. It must
// never panic; acceptance is only legitimate if re-encoding the decoded
// frame reproduces exactly the bytes consumed (i.e. the input really was a
// validly MACed frame, which unkeyed fuzzing cannot forge).
func FuzzRecvArbitrary(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 1})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	// An oversized header must be refused before allocation.
	var huge [5]byte
	binary.BigEndian.PutUint32(huge[:4], MaxFrame+1)
	f.Add(huge[:])

	f.Fuzz(func(t *testing.T, raw []byte) {
		r := bytes.NewReader(raw)
		recv := &Session{rw: readOnly{r}, key: fuzzKey}
		ft, pl, err := recv.Recv()
		if err != nil {
			return
		}
		consumed := raw[:len(raw)-r.Len()]
		var buf bytes.Buffer
		sender := &Session{rw: &buf, key: fuzzKey}
		if err := sender.Send(ft, pl); err != nil {
			t.Fatalf("re-encoding accepted frame: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), consumed) {
			t.Fatalf("accepted %d bytes that do not re-encode to a valid frame", len(consumed))
		}
	})
}

func TestRecvOversizedHeaderRejected(t *testing.T) {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], MaxFrame+1)
	recv := &Session{rw: readOnly{bytes.NewReader(hdr[:])}, key: fuzzKey}
	if _, _, err := recv.Recv(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized header error = %v, want ErrTooLarge", err)
	}
}

func TestRecvTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	sender := &Session{rw: &buf, key: fuzzKey}
	if err := sender.Send(1, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 0; cut < len(whole); cut++ {
		recv := &Session{rw: readOnly{bytes.NewReader(whole[:cut])}, key: fuzzKey}
		if _, _, err := recv.Recv(); err == nil {
			t.Fatalf("frame truncated at %d/%d accepted", cut, len(whole))
		}
	}
}
