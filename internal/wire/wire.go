// Package wire is the secure transport of frostlab's monitoring plane. The
// paper moved its measurement data over "public-key authentication through
// an OpenSSH tunnel" (§3.5); wire rebuilds the properties that matter on
// the standard library:
//
//   - mutual authentication by per-host pre-shared keys with an
//     HMAC-SHA256 challenge–response handshake (the stand-in for SSH
//     public-key auth);
//   - a per-session key derived from both nonces, so captured traffic
//     cannot be replayed into another session;
//   - length-prefixed frames, each carrying a monotonically increasing
//     sequence number and an HMAC over (sequence, type, payload), so
//     tampering, truncation, reordering and replay are all detected.
//
// wire runs over any io.ReadWriter — a real net.Conn in cmd/collectord and
// cmd/nodeagent, a net.Pipe in tests and the in-process experiment.
package wire

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol limits.
const (
	// MaxFrame bounds a frame payload; sensor bundles are far smaller.
	MaxFrame = 4 << 20
	// NonceSize is the handshake nonce length.
	NonceSize = 32
	macSize   = sha256.Size
)

// Frame types are application-defined; wire reserves none.

// Errors returned by the package.
var (
	ErrAuth        = errors.New("wire: authentication failed")
	ErrTampered    = errors.New("wire: frame MAC mismatch")
	ErrTooLarge    = errors.New("wire: frame exceeds MaxFrame")
	ErrUnknownPeer = errors.New("wire: unknown peer")
)

// Keystore resolves a peer name to its pre-shared key. The zero map is a
// valid empty store.
type Keystore map[string][]byte

// Lookup returns the key for a peer.
func (ks Keystore) Lookup(peer string) ([]byte, error) {
	k, ok := ks[peer]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPeer, peer)
	}
	return k, nil
}

// Session is an authenticated, integrity-protected frame stream. Create
// one with Dial (client side) or Accept (server side).
type Session struct {
	rw      io.ReadWriter
	key     []byte // session key
	peer    string
	sendSeq uint64
	recvSeq uint64
}

// Peer returns the authenticated identity of the other side. On the client
// it is the server name given to Dial; on the server it is the client's
// claimed and verified host ID.
func (s *Session) Peer() string { return s.peer }

func mac(key []byte, parts ...[]byte) []byte {
	m := hmac.New(sha256.New, key)
	for _, p := range parts {
		m.Write(p)
	}
	return m.Sum(nil)
}

// sessionKey derives the per-session key from the pre-shared key and both
// nonces.
func sessionKey(psk, clientNonce, serverNonce []byte) []byte {
	return mac(psk, []byte("frostlab-session-v1"), clientNonce, serverNonce)
}

// Nonce is a function producing NonceSize random bytes. Deterministic
// tests and simulations inject their own; production passes
// crypto/rand.Read-backed nonces.
type Nonce func() ([]byte, error)

// Dial performs the client side of the handshake over rw, identifying as
// hostID with the given pre-shared key.
func Dial(rw io.ReadWriter, hostID string, psk []byte, nonce Nonce) (*Session, error) {
	cn, err := nonce()
	if err != nil {
		return nil, fmt.Errorf("wire: generating nonce: %w", err)
	}
	if len(cn) != NonceSize {
		return nil, fmt.Errorf("wire: nonce length %d, want %d", len(cn), NonceSize)
	}
	// -> hello: hostID, clientNonce
	if err := writeBlob(rw, []byte(hostID)); err != nil {
		return nil, err
	}
	if err := writeBlob(rw, cn); err != nil {
		return nil, err
	}
	// <- serverNonce, proof = HMAC(psk, "srv", cn, sn)
	sn, err := readBlob(rw, NonceSize)
	if err != nil {
		return nil, err
	}
	srvProof, err := readBlob(rw, macSize)
	if err != nil {
		return nil, err
	}
	if !hmac.Equal(srvProof, mac(psk, []byte("srv"), cn, sn)) {
		return nil, fmt.Errorf("%w: server proof invalid", ErrAuth)
	}
	// -> proof = HMAC(psk, "cli", sn, cn)
	if err := writeBlob(rw, mac(psk, []byte("cli"), sn, cn)); err != nil {
		return nil, err
	}
	return &Session{rw: rw, key: sessionKey(psk, cn, sn), peer: "server"}, nil
}

// Accept performs the server side of the handshake, authenticating the
// client against the keystore.
func Accept(rw io.ReadWriter, keys Keystore, nonce Nonce) (*Session, error) {
	hostID, err := readBlob(rw, 256)
	if err != nil {
		return nil, err
	}
	cn, err := readBlob(rw, NonceSize)
	if err != nil {
		return nil, err
	}
	psk, err := keys.Lookup(string(hostID))
	if err != nil {
		return nil, err
	}
	sn, err := nonce()
	if err != nil {
		return nil, fmt.Errorf("wire: generating nonce: %w", err)
	}
	if len(sn) != NonceSize {
		return nil, fmt.Errorf("wire: nonce length %d, want %d", len(sn), NonceSize)
	}
	if err := writeBlob(rw, sn); err != nil {
		return nil, err
	}
	if err := writeBlob(rw, mac(psk, []byte("srv"), cn, sn)); err != nil {
		return nil, err
	}
	cliProof, err := readBlob(rw, macSize)
	if err != nil {
		return nil, err
	}
	if !hmac.Equal(cliProof, mac(psk, []byte("cli"), sn, cn)) {
		return nil, fmt.Errorf("%w: client proof invalid for %q", ErrAuth, hostID)
	}
	return &Session{rw: rw, key: sessionKey(psk, cn, sn), peer: string(hostID)}, nil
}

// Send transmits one frame of the given application type.
func (s *Session) Send(frameType byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	var seq [8]byte
	binary.BigEndian.PutUint64(seq[:], s.sendSeq)
	tag := mac(s.key, seq[:], []byte{frameType}, payload)
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = frameType
	if _, err := s.rw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := s.rw.Write(payload); err != nil {
		return err
	}
	if _, err := s.rw.Write(tag); err != nil {
		return err
	}
	s.sendSeq++
	return nil
}

// Recv reads and verifies one frame, returning its type and payload.
func (s *Session) Recv() (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(s.rw, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("%w: header claims %d bytes", ErrTooLarge, n)
	}
	frameType := hdr[4]
	payload := make([]byte, n)
	if _, err := io.ReadFull(s.rw, payload); err != nil {
		return 0, nil, err
	}
	tag := make([]byte, macSize)
	if _, err := io.ReadFull(s.rw, tag); err != nil {
		return 0, nil, err
	}
	var seq [8]byte
	binary.BigEndian.PutUint64(seq[:], s.recvSeq)
	if !hmac.Equal(tag, mac(s.key, seq[:], []byte{frameType}, payload)) {
		return 0, nil, ErrTampered
	}
	s.recvSeq++
	return frameType, payload, nil
}

// writeBlob writes a 2-byte length-prefixed byte string.
func writeBlob(w io.Writer, p []byte) error {
	if len(p) > 0xffff {
		return fmt.Errorf("wire: blob of %d bytes too large", len(p))
	}
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], uint16(len(p)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(p)
	return err
}

// readBlob reads a length-prefixed byte string of at most max bytes.
func readBlob(r io.Reader, max int) ([]byte, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint16(hdr[:]))
	if n > max {
		return nil, fmt.Errorf("wire: blob of %d bytes exceeds limit %d", n, max)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r, p); err != nil {
		return nil, err
	}
	return p, nil
}

// CounterNonce returns a deterministic Nonce for simulations and tests: an
// incrementing counter hashed with the label. Production code should pass
// a crypto/rand-backed Nonce instead.
func CounterNonce(label string) Nonce {
	var ctr uint64
	return func() ([]byte, error) {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], ctr)
		ctr++
		sum := sha256.Sum256(append([]byte(label), b[:]...))
		return sum[:], nil
	}
}

// VerifyKeyEquality is a constant-time key comparison helper for tests and
// key-management tooling.
func VerifyKeyEquality(a, b []byte) bool {
	return len(a) == len(b) && bytes.Equal(mac(a, []byte("eq")), mac(b, []byte("eq")))
}
