package power

import (
	"math"
	"testing"
	"time"

	"frostlab/internal/units"
	"frostlab/internal/weather"
)

func TestReferenceClusterPUE(t *testing.T) {
	// §5: 75 kW IT + (6.9 + 44.7 + 3.8) kW cooling -> "a rather efficient
	// 1.74".
	p := ReferenceCluster()
	pue, err := p.PUE()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pue-1.74) > 0.005 {
		t.Errorf("PUE %.4f, want 1.74", pue)
	}
	if p.CoolingDraw() != 55_400 {
		t.Errorf("cooling draw %v, want 55.4kW", p.CoolingDraw())
	}
}

func TestPUEValidation(t *testing.T) {
	if _, err := (Plant{Name: "x"}).PUE(); err == nil {
		t.Error("zero IT load accepted")
	}
}

func TestSharedLoadPUEWorse(t *testing.T) {
	// §5: "for PUE, the situation is worse" when old CRACs carry some of
	// the load.
	p := ReferenceCluster()
	base, err := p.PUE()
	if err != nil {
		t.Fatal(err)
	}
	shared, err := SharedLoadPUE(p, 0.2, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	if shared <= base {
		t.Errorf("shared-load PUE %.3f not worse than naive %.3f", shared, base)
	}
	same, err := SharedLoadPUE(p, 0, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	if same != base {
		t.Errorf("zero share changed PUE: %v vs %v", same, base)
	}
}

func TestSharedLoadPUEValidation(t *testing.T) {
	p := ReferenceCluster()
	if _, err := SharedLoadPUE(p, -0.1, 0.4); err == nil {
		t.Error("negative share accepted")
	}
	if _, err := SharedLoadPUE(p, 1.5, 0.4); err == nil {
		t.Error("share > 1 accepted")
	}
	if _, err := SharedLoadPUE(p, 0.5, -1); err == nil {
		t.Error("negative efficiency accepted")
	}
}

func TestEconomizerPowerRegimes(t *testing.T) {
	e := DefaultEconomizer()
	it := units.Watts(75_000)
	cold := e.CoolingPowerAt(it, -10)
	warm := e.CoolingPowerAt(it, 30)
	if cold >= warm {
		t.Errorf("free cooling (%v) not cheaper than mechanical (%v)", cold, warm)
	}
	if got, want := float64(cold), float64(it)*e.FanFraction; math.Abs(got-want) > 1 {
		t.Errorf("free-cooling draw %v, want fans-only %v", cold, want)
	}
	if conv := e.ConventionalCoolingPower(it); conv != warm {
		t.Errorf("conventional %v != mechanical-regime economizer %v", conv, warm)
	}
}

func TestEconomizerValidate(t *testing.T) {
	bad := DefaultEconomizer()
	bad.FanFraction = 2
	if err := bad.Validate(); err == nil {
		t.Error("fan fraction 2 accepted")
	}
	bad = DefaultEconomizer()
	bad.MechanicalCOP = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero COP accepted")
	}
}

func TestCompareHelsinkiWinterIsFullyFree(t *testing.T) {
	// In a Finnish winter the economizer should free-cool essentially
	// always — the paper's whole premise.
	m := weather.ReferenceWinter0910("winter0910")
	e := DefaultEconomizer()
	from := weather.ExperimentEpoch
	to := from.AddDate(0, 0, 30)
	c, err := e.Compare(m, 75_000, from, to, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if c.FreeCoolingFraction < 0.999 {
		t.Errorf("free-cooling fraction %.3f in February Helsinki, want ~1", c.FreeCoolingFraction)
	}
	// With compressors off the whole month, savings approach
	// fans-vs-(fans+chiller): 1 - fan/(fan + 1/COP).
	wantSavings := 1 - e.FanFraction/(e.FanFraction+1/e.MechanicalCOP)
	if math.Abs(c.Savings-wantSavings) > 0.02 {
		t.Errorf("savings %.3f, want ≈ %.3f", c.Savings, wantSavings)
	}
	if c.EconomizerPUE >= c.ConventionalPUE {
		t.Error("economizer PUE not better")
	}
	if c.EconomizerPUE < 1 {
		t.Errorf("PUE %v below 1 is impossible", c.EconomizerPUE)
	}
}

func TestCompareSavingsWithinPublishedBand(t *testing.T) {
	// §1: HP reports 40%, Intel 67%. A Helsinki winter sits at or above
	// the top of that band (it is the *favourable* season the paper
	// exploits); the test checks we land in a sane neighbourhood of the
	// published anchors rather than something wild.
	m := weather.ReferenceWinter0910("winter0910")
	c, err := DefaultEconomizer().Compare(m, 75_000, weather.ExperimentEpoch, weather.ExperimentEpoch.AddDate(0, 0, 42), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if c.Savings < HPReportedSavings {
		t.Errorf("winter savings %.2f below HP's annual 0.40; implausible", c.Savings)
	}
	if c.Savings > 0.95 {
		t.Errorf("savings %.2f implausibly near total", c.Savings)
	}
}

// warmModel is a fake climate that never allows free cooling.
type warmModel struct{}

func (warmModel) At(time.Time) weather.Conditions {
	return weather.Conditions{Temp: 35, RH: 40}
}

func TestCompareHotClimateSavesNothing(t *testing.T) {
	c, err := DefaultEconomizer().Compare(warmModel{}, 75_000, weather.ExperimentEpoch, weather.ExperimentEpoch.AddDate(0, 0, 7), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if c.FreeCoolingFraction != 0 {
		t.Errorf("hot climate free-cooled %.2f of the time", c.FreeCoolingFraction)
	}
	if c.Savings != 0 {
		t.Errorf("hot climate savings %.3f, want 0", c.Savings)
	}
}

func TestCompareValidation(t *testing.T) {
	m := warmModel{}
	e := DefaultEconomizer()
	from := weather.ExperimentEpoch
	if _, err := e.Compare(m, 0, from, from.Add(time.Hour), time.Minute); err == nil {
		t.Error("zero IT load accepted")
	}
	if _, err := e.Compare(m, 1000, from, from, time.Minute); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := e.Compare(m, 1000, from, from.Add(time.Hour), 0); err == nil {
		t.Error("zero step accepted")
	}
	bad := e
	bad.MechanicalCOP = 0
	if _, err := bad.Compare(m, 1000, from, from.Add(time.Hour), time.Minute); err == nil {
		t.Error("invalid economizer accepted")
	}
}

func BenchmarkCompareMonth(b *testing.B) {
	m := weather.ReferenceWinter0910("winter0910")
	e := DefaultEconomizer()
	from := weather.ExperimentEpoch
	to := from.AddDate(0, 1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Compare(m, 75_000, from, to, time.Hour); err != nil {
			b.Fatal(err)
		}
	}
}
