// Package power models data-center energy use: the PUE arithmetic of the
// paper's §5 (the department's new cluster and its cooling chain), and the
// air-economizer comparison behind the paper's motivation (§1: "energy
// savings from 40% to 67%, according to HP and Intel").
package power

import (
	"fmt"
	"time"

	"frostlab/internal/units"
	"frostlab/internal/weather"
)

// CoolingUnit is one element of the cooling chain.
type CoolingUnit struct {
	Name string
	Draw units.Watts
}

// Plant is an IT load plus its cooling chain.
type Plant struct {
	Name string
	// ITLoad is the computing equipment's draw.
	ITLoad units.Watts
	// Cooling lists the units whose draw is attributable to cooling the
	// IT load.
	Cooling []CoolingUnit
}

// CoolingDraw sums the cooling chain's power.
func (p Plant) CoolingDraw() units.Watts {
	var sum units.Watts
	for _, c := range p.Cooling {
		sum += c.Draw
	}
	return sum
}

// PUE returns the power usage effectiveness: total facility power over IT
// power. §5 computes 1.74 for the new cluster by "just summing those
// figures up".
func (p Plant) PUE() (float64, error) {
	if p.ITLoad <= 0 {
		return 0, fmt.Errorf("power: plant %q has no IT load", p.Name)
	}
	return float64(p.ITLoad+p.CoolingDraw()) / float64(p.ITLoad), nil
}

// ReferenceCluster is the §5 inventory: a 75 kW cluster cooled by three
// new CRAC units (6.9 kW total), a chilled-water HVAC unit (44.7 kW
// specified draw) and a roof liquid cooling unit (3.8 kW).
func ReferenceCluster() Plant {
	return Plant{
		Name:   "CS department cluster (2010)",
		ITLoad: 75_000,
		Cooling: []CoolingUnit{
			{Name: "3x CRAC", Draw: 6_900},
			{Name: "chilled water unit (HVAC room)", Draw: 44_700},
			{Name: "roof liquid cooling unit", Draw: 3_800},
		},
	}
}

// SharedLoadPUE models §5's caveat: the existing CRACs absorb some of the
// new thermal load, so the real PUE is *worse* than the naive sum. The
// extra draw attributed to the old CRACs is their efficiency (W of
// electricity per W of heat moved) times the share of the IT load they
// carry.
func SharedLoadPUE(p Plant, existingCRACShare float64, existingCRACEfficiency float64) (float64, error) {
	if existingCRACShare < 0 || existingCRACShare > 1 {
		return 0, fmt.Errorf("power: CRAC share %v out of [0,1]", existingCRACShare)
	}
	if existingCRACEfficiency < 0 {
		return 0, fmt.Errorf("power: negative CRAC efficiency")
	}
	base, err := p.PUE()
	if err != nil {
		return 0, err
	}
	extra := float64(p.ITLoad) * existingCRACShare * existingCRACEfficiency
	return base + extra/float64(p.ITLoad), nil
}

// Published savings anchors from the paper's §1.
const (
	// IntelReportedSavings is Intel's air-economizer proof of concept [1].
	IntelReportedSavings = 0.67
	// HPReportedSavings is HP's Wynyard figure [3].
	HPReportedSavings = 0.40
)

// Economizer models an air-side economizer: whenever outside air is cold
// enough to carry the heat load, compressors stay off and only fans run.
type Economizer struct {
	// FreeCoolingBelow is the outside temperature below which outside air
	// alone cools the load (supply setpoint minus heat-exchange approach).
	FreeCoolingBelow units.Celsius
	// FanFraction is fan power as a fraction of IT load while free
	// cooling.
	FanFraction float64
	// MechanicalCOP is the chiller's coefficient of performance when
	// compressors must run.
	MechanicalCOP float64
}

// DefaultEconomizer matches Intel's proof-of-concept configuration: free
// cooling below about 24 °C supply (they allowed up to ~32 °C with
// degraded margins), ~5 % fan overhead, COP 3 chillers.
func DefaultEconomizer() Economizer {
	return Economizer{FreeCoolingBelow: 21, FanFraction: 0.06, MechanicalCOP: 3}
}

// Validate checks the configuration.
func (e Economizer) Validate() error {
	if e.FanFraction < 0 || e.FanFraction > 1 {
		return fmt.Errorf("power: fan fraction %v out of [0,1]", e.FanFraction)
	}
	if e.MechanicalCOP <= 0 {
		return fmt.Errorf("power: COP must be positive")
	}
	return nil
}

// CoolingPowerAt returns the economizer's draw for the given IT load and
// outside temperature.
func (e Economizer) CoolingPowerAt(itLoad units.Watts, outside units.Celsius) units.Watts {
	fans := units.Watts(float64(itLoad) * e.FanFraction)
	if outside < e.FreeCoolingBelow {
		return fans
	}
	return fans + units.Watts(float64(itLoad)/e.MechanicalCOP)
}

// ConventionalCoolingPower is the always-mechanical baseline: chiller plus
// the same fan overhead, independent of weather.
func (e Economizer) ConventionalCoolingPower(itLoad units.Watts) units.Watts {
	return units.Watts(float64(itLoad)*e.FanFraction) + units.Watts(float64(itLoad)/e.MechanicalCOP)
}

// Comparison is the result of an economizer-vs-conventional study.
type Comparison struct {
	// FreeCoolingFraction is the share of time outside air sufficed.
	FreeCoolingFraction float64
	// EconomizerEnergy and ConventionalEnergy are the cooling energies
	// over the study period.
	EconomizerEnergy   units.KilowattHours
	ConventionalEnergy units.KilowattHours
	// Savings = 1 - economizer/conventional.
	Savings float64
	// EconomizerPUE and ConventionalPUE are period-average PUEs.
	EconomizerPUE   float64
	ConventionalPUE float64
}

// Compare evaluates both cooling strategies for an IT load against a
// weather model over [from, to) sampled at step.
func (e Economizer) Compare(m weather.Model, itLoad units.Watts, from, to time.Time, step time.Duration) (Comparison, error) {
	if err := e.Validate(); err != nil {
		return Comparison{}, err
	}
	if itLoad <= 0 {
		return Comparison{}, fmt.Errorf("power: non-positive IT load %v", itLoad)
	}
	if step <= 0 || !to.After(from) {
		return Comparison{}, fmt.Errorf("power: bad study window [%v, %v) step %v", from, to, step)
	}
	var c Comparison
	hours := step.Hours()
	var free, total int
	for at := from; at.Before(to); at = at.Add(step) {
		outside := m.At(at).Temp
		econ := e.CoolingPowerAt(itLoad, outside)
		conv := e.ConventionalCoolingPower(itLoad)
		c.EconomizerEnergy += econ.Energy(hours)
		c.ConventionalEnergy += conv.Energy(hours)
		if outside < e.FreeCoolingBelow {
			free++
		}
		total++
	}
	c.FreeCoolingFraction = float64(free) / float64(total)
	if c.ConventionalEnergy > 0 {
		c.Savings = 1 - float64(c.EconomizerEnergy)/float64(c.ConventionalEnergy)
	}
	itEnergy := itLoad.Energy(to.Sub(from).Hours())
	c.EconomizerPUE = float64(itEnergy+c.EconomizerEnergy) / float64(itEnergy)
	c.ConventionalPUE = float64(itEnergy+c.ConventionalEnergy) / float64(itEnergy)
	return c, nil
}
