package climate

import (
	"strings"
	"testing"

	"frostlab/internal/units"
)

// FuzzReadCSV drives the climate CSV import with arbitrary byte soup. The
// invariant is the same as the weather fuzzer's: never panic, and any trace
// that parses must yield physically clamped conditions.
func FuzzReadCSV(f *testing.F) {
	f.Add("timestamp,temp_c,rh_pct,wind_ms,irr_wm2,snow_mmh\n" +
		"2010-02-12 00:00:00,-9.20,84.0,3.80,0.0,0.00\n" +
		"2010-02-12 01:00:00,-9.90,85.5,4.10,0.0,0.40\n")
	f.Add("timestamp,temp_c,rh_pct,wind_ms,irr_wm2,snow_mmh\n")
	f.Add("timestamp,temp_c,rh_pct,wind_ms,irr_wm2,snow_mmh\n" +
		"2010-02-12 00:00:00,45.00,250.0,-3.00,1e309,NaN\n")
	f.Add("a,b\n1,2\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		lo, hi := tr.Span()
		mid := lo.Add(hi.Sub(lo) / 2)
		for _, c := range []units.RelHumidity{tr.At(lo).RH, tr.At(mid).RH, tr.At(hi).RH} {
			if !c.Valid() {
				t.Fatalf("parsed trace yields unclamped RH %v", c)
			}
		}
	})
}
