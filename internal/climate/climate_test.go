package climate

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"frostlab/internal/units"
	"frostlab/internal/weather"
)

var testEpoch = weather.ExperimentEpoch

// TestLibraryComplete pins the catalogue: every family resolves, validates
// its own defaults, and is reachable through both Lookup and Families.
func TestLibraryComplete(t *testing.T) {
	want := []string{"coastal-fog", "desert", "helsinki", "monsoon", "tropical"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, f := range Families() {
		if err := f.Defaults.Validate(); err != nil {
			t.Errorf("%s defaults invalid: %v", f.Name, err)
		}
		if f.Description == "" {
			t.Errorf("%s has no description", f.Name)
		}
		if _, err := Lookup(f.Name); err != nil {
			t.Errorf("Lookup(%q): %v", f.Name, err)
		}
	}
	if _, err := Lookup("atlantis"); err == nil {
		t.Fatal("Lookup of unknown family should fail")
	}
}

// TestPhysicalBounds sweeps every family over six weeks and asserts the
// physical invariants the downstream psychrometrics rely on: RH clamped to
// [0, 100] % and dew point never above the dry-bulb temperature.
func TestPhysicalBounds(t *testing.T) {
	for _, f := range Families() {
		m, err := f.Model(testEpoch, "bounds-seed")
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		end := testEpoch.AddDate(0, 0, 42)
		for at := testEpoch; at.Before(end); at = at.Add(17 * time.Minute) {
			c := m.At(at)
			if !c.RH.Valid() {
				t.Fatalf("%s at %v: RH %v outside [0, 100]", f.Name, at, c.RH)
			}
			dp, err := units.DewPoint(c.Temp, c.RH)
			if err != nil {
				t.Fatalf("%s at %v: dew point: %v", f.Name, at, err)
			}
			// Magnus inversion at RH = 100 returns the dry-bulb itself;
			// allow float slack only.
			if dp > c.Temp+1e-9 {
				t.Fatalf("%s at %v: dew point %v exceeds dry-bulb %v (RH %v)",
					f.Name, at, dp, c.Temp, c.RH)
			}
			if c.Wind < 0 {
				t.Fatalf("%s at %v: negative wind %v", f.Name, at, c.Wind)
			}
			if c.Irradiance < 0 {
				t.Fatalf("%s at %v: negative irradiance %v", f.Name, at, c.Irradiance)
			}
		}
	}
}

// TestTropicalCondensationStress asserts the tropical family actually
// exercises the condensation-stress path: nights reach near-saturation with
// a dew point within a couple of degrees of the dry-bulb — the regime the
// control plane's dew-point guard exists for — while the stress=0 variant
// does not.
func TestTropicalCondensationStress(t *testing.T) {
	f, err := Lookup("tropical")
	if err != nil {
		t.Fatal(err)
	}
	stressed, err := f.Model(testEpoch, "tropic-seed")
	if err != nil {
		t.Fatal(err)
	}
	calm := f.Defaults
	calm.Stress = 0
	unstressed, err := New("tropical", calm, testEpoch, "tropic-seed")
	if err != nil {
		t.Fatal(err)
	}
	maxRH, maxCalmRH := units.RelHumidity(0), units.RelHumidity(0)
	stressHits := 0
	end := testEpoch.AddDate(0, 0, 14)
	for at := testEpoch; at.Before(end); at = at.Add(10 * time.Minute) {
		c := stressed.At(at)
		if c.RH > maxRH {
			maxRH = c.RH
		}
		margin, err := units.DewPointMargin(c.Temp, c.RH, c.Temp)
		if err != nil {
			t.Fatal(err)
		}
		if margin < 2 { // within 2 °C of condensing on an ambient surface
			stressHits++
		}
		if u := unstressed.At(at); u.RH > maxCalmRH {
			maxCalmRH = u.RH
		}
	}
	if maxRH < 95 {
		t.Fatalf("tropical nights peak at %v RH, want near-saturation ≥ 95%%", maxRH)
	}
	if stressHits == 0 {
		t.Fatal("tropical family never entered the condensation-stress regime")
	}
	if maxCalmRH >= maxRH {
		t.Fatalf("stress overlay inert: stressed max %v, unstressed max %v", maxRH, maxCalmRH)
	}
}

// TestDesertExtremes asserts the desert family produces the 45 °C-class
// afternoons and large diurnal swing the extreme-climate control tests
// build on, with bone-dry air.
func TestDesertExtremes(t *testing.T) {
	f, _ := Lookup("desert")
	m, err := f.Model(testEpoch, "desert-seed")
	if err != nil {
		t.Fatal(err)
	}
	maxT, minT := units.Celsius(-999), units.Celsius(999)
	var rhSum float64
	var n int
	end := testEpoch.AddDate(0, 0, 21)
	for at := testEpoch; at.Before(end); at = at.Add(15 * time.Minute) {
		c := m.At(at)
		if c.Temp > maxT {
			maxT = c.Temp
		}
		if c.Temp < minT {
			minT = c.Temp
		}
		rhSum += float64(c.RH)
		n++
	}
	if maxT < 40 {
		t.Errorf("desert afternoons peak at %v, want ≥ 40 °C", maxT)
	}
	if maxT-minT < 15 {
		t.Errorf("desert diurnal span %v, want ≥ 15 °C", maxT-minT)
	}
	if avg := rhSum / float64(n); avg > 35 {
		t.Errorf("desert mean RH %.1f%%, want dry (≤ 35%%)", avg)
	}
}

// TestMonsoonOnset asserts the monsoon family transitions from a dry
// pre-monsoon regime to sustained saturation bursts after the onset.
func TestMonsoonOnset(t *testing.T) {
	f, _ := Lookup("monsoon")
	m, err := f.Model(testEpoch, "monsoon-seed")
	if err != nil {
		t.Fatal(err)
	}
	avgRH := func(from, to time.Time) float64 {
		var sum float64
		var n int
		for at := from; at.Before(to); at = at.Add(20 * time.Minute) {
			sum += float64(m.At(at).RH)
			n++
		}
		return sum / float64(n)
	}
	pre := avgRH(testEpoch, testEpoch.AddDate(0, 0, 10))
	post := avgRH(testEpoch.AddDate(0, 0, 25), testEpoch.AddDate(0, 0, 35))
	if post < pre+8 {
		t.Fatalf("monsoon onset missing: pre RH %.1f%%, post RH %.1f%%", pre, post)
	}
	if post < 85 {
		t.Fatalf("monsoon season RH %.1f%%, want sustained ≥ 85%%", post)
	}
}

// TestCoastalFogBanks asserts the fog overlay produces saturation pulses
// that also cut irradiance, and that fewer occur at lower stress.
func TestCoastalFogBanks(t *testing.T) {
	f, _ := Lookup("coastal-fog")
	count := func(stress float64) int {
		p := f.Defaults
		p.Stress = stress
		m, err := New("coastal-fog", p, testEpoch, "fog-seed")
		if err != nil {
			t.Fatal(err)
		}
		hits := 0
		end := testEpoch.AddDate(0, 0, 28)
		for at := testEpoch; at.Before(end); at = at.Add(30 * time.Minute) {
			if m.At(at).RH > 95 {
				hits++
			}
		}
		return hits
	}
	full, light := count(1), count(0.3)
	if full == 0 {
		t.Fatal("coastal-fog at full stress never saturated")
	}
	if light >= full {
		t.Fatalf("fog frequency should grow with stress: stress=0.3 → %d, stress=1 → %d", light, full)
	}
}

// TestReplayDeterminism: the same (family, params, epoch, seed) tuple is
// byte-identically replayable — across independent constructions and across
// CloneModel copies — and a different seed perturbs the path.
func TestReplayDeterminism(t *testing.T) {
	for _, f := range Families() {
		a, err := f.Model(testEpoch, "replay")
		if err != nil {
			t.Fatal(err)
		}
		b, err := f.Model(testEpoch, "replay")
		if err != nil {
			t.Fatal(err)
		}
		other, err := f.Model(testEpoch, "replay-2")
		if err != nil {
			t.Fatal(err)
		}
		cl := a.(weather.Cloner).CloneModel()
		diverged := false
		end := testEpoch.AddDate(0, 0, 20)
		for at := testEpoch; at.Before(end); at = at.Add(41 * time.Minute) {
			ca, cb, cc := a.At(at), b.At(at), cl.At(at)
			if ca != cb {
				t.Fatalf("%s at %v: independent builds diverge: %+v vs %+v", f.Name, at, ca, cb)
			}
			if ca != cc {
				t.Fatalf("%s at %v: clone diverges: %+v vs %+v", f.Name, at, ca, cc)
			}
			if ca != other.At(at) {
				diverged = true
			}
		}
		if !diverged {
			t.Errorf("%s: different seeds produced identical paths", f.Name)
		}
	}
}

// TestParamsValidate covers the rejection paths.
func TestParamsValidate(t *testing.T) {
	base := Params{Latitude: 10, MeanRH: 50}
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"latitude", func(p *Params) { p.Latitude = 91 }},
		{"rh", func(p *Params) { p.MeanRH = 101 }},
		{"stress", func(p *Params) { p.Stress = 1.5 }},
		{"amplitude", func(p *Params) { p.DiurnalAmplitude = -1 }},
	}
	for _, tc := range cases {
		p := base
		tc.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: invalid params accepted", tc.name)
		}
		if _, err := New("desert", p, testEpoch, "s"); err == nil {
			t.Errorf("%s: New accepted invalid params", tc.name)
		}
	}
	if _, err := New("desert", base, time.Time{}, "s"); err == nil {
		t.Error("zero epoch accepted")
	}
}

// TestReadCSV round-trips a generated trace through the climate CSV import
// and rejects malformed input.
func TestReadCSV(t *testing.T) {
	f, _ := Lookup("desert")
	m, err := f.Model(testEpoch, "csv-seed")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	end := testEpoch.Add(48 * time.Hour)
	if err := weather.WriteTraceCSV(&buf, m, testEpoch, end, time.Hour); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	at := testEpoch.Add(7 * time.Hour)
	got, want := tr.At(at), m.At(at)
	if d := float64(got.Temp - want.Temp); d > 0.02 || d < -0.02 {
		t.Fatalf("round-trip temp at %v: got %v, want %v", at, got.Temp, want.Temp)
	}
	if _, err := ReadCSV(strings.NewReader("not,a,trace\n")); err == nil {
		t.Fatal("malformed CSV accepted")
	}
}
