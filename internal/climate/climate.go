// Package climate is frostlab's scenario library: a catalogue of
// parameterised climate families that turn the single-site Helsinki
// reproduction into a multi-site laboratory. The paper demonstrates
// free-air cooling through one winter at 60 °N; the obvious next question
// — where and when does it pay off? — needs deserts, tropics, fog belts
// and monsoons, each as deterministic and replayable as the calibrated
// winter-0910 model.
//
// Every family is a generator over internal/weather's Synthetic model plus
// an optional family-specific overlay (fog banks, monsoon bursts, tropical
// night saturation), built from seeded harmonic mixtures so that conditions
// are a pure function of time: any site is climate.New(family, params,
// epoch, seed) and byte-identically replayable at any GOMAXPROCS. The
// existing Helsinki and CSV-trace paths remain first-class citizens:
// "helsinki" is a family here, and ReadCSV imports a recorded trace through
// the same weather.Model interface.
package climate

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"frostlab/internal/simkernel"
	"frostlab/internal/units"
	"frostlab/internal/weather"
)

// Params parameterises a family. The zero value selects the family's
// defaults field by field only through Family.Model; New applies Params
// exactly as given.
type Params struct {
	// Latitude in degrees north; controls day length and solar elevation.
	Latitude float64
	// MeanTemp is the seasonal mean temperature at the epoch, °C.
	MeanTemp float64
	// WarmingPerDay is the seasonal trend, °C/day.
	WarmingPerDay float64
	// DiurnalAmplitude is the daily half-range, °C.
	DiurnalAmplitude float64
	// SynopticAmplitude scales multi-day weather-system variation, °C.
	SynopticAmplitude float64
	// MeanRH is the average relative humidity, percent.
	MeanRH float64
	// MeanWind is the average wind speed, m/s.
	MeanWind float64
	// Stress scales the family's characteristic stressor in [0, 1]: cold
	// snaps for helsinki, fog-bank frequency for coastal-fog, night
	// saturation for tropical, burst depth for monsoon. 0 disables it.
	Stress float64
}

// Validate checks the parameters' physical ranges.
func (p Params) Validate() error {
	if p.Latitude < -90 || p.Latitude > 90 {
		return fmt.Errorf("climate: latitude %v out of range", p.Latitude)
	}
	if p.MeanRH < 0 || p.MeanRH > 100 {
		return fmt.Errorf("climate: mean RH %v out of [0, 100]", p.MeanRH)
	}
	if p.Stress < 0 || p.Stress > 1 {
		return fmt.Errorf("climate: stress %v out of [0, 1]", p.Stress)
	}
	if p.DiurnalAmplitude < 0 || p.SynopticAmplitude < 0 || p.MeanWind < 0 {
		return fmt.Errorf("climate: negative amplitude")
	}
	return nil
}

// overlayKind selects a family's post-transform on the base synthetic
// conditions.
type overlayKind int

const (
	overlayNone overlayKind = iota
	overlayTropical
	overlayFog
	overlayMonsoon
	overlayColdSnaps // helsinki: anchored snaps, handled at build time
)

// Family is one entry of the scenario library.
type Family struct {
	// Name is the library key ("desert", "tropical", ...).
	Name string
	// Description is the one-line catalogue entry for -list-climates.
	Description string
	// Defaults are the family's reference parameters.
	Defaults Params

	kind overlayKind
}

// The scenario library. Parameter sets describe the experiment season at
// each archetype site, not annual averages, matching the style of the
// paper-comparison presets in internal/weather.
var families = []Family{
	{
		Name:        "helsinki",
		Description: "Southern-Finland winter, the paper's site: cold snaps, overcast, spring warm-up",
		Defaults: Params{Latitude: 60.2, MeanTemp: -9, WarmingPerDay: 0.24,
			DiurnalAmplitude: 2, SynopticAmplitude: 4.5, MeanRH: 84, MeanWind: 3.8, Stress: 1},
		kind: overlayColdSnaps,
	},
	{
		Name:        "desert",
		Description: "desert diurnal swing: 45 °C afternoons, cool nights, bone-dry air",
		Defaults: Params{Latitude: 33.4, MeanTemp: 31, WarmingPerDay: 0.1,
			DiurnalAmplitude: 13, SynopticAmplitude: 3.5, MeanRH: 18, MeanWind: 4.2, Stress: 1},
		kind: overlayNone,
	},
	{
		Name:        "tropical",
		Description: "tropical humidity: warm nights pushed to saturation, condensation stress",
		Defaults: Params{Latitude: 1.35, MeanTemp: 27.5, WarmingPerDay: 0,
			DiurnalAmplitude: 3, SynopticAmplitude: 1.2, MeanRH: 88, MeanWind: 2.2, Stress: 1},
		kind: overlayTropical,
	},
	{
		Name:        "coastal-fog",
		Description: "coastal fog banks: saturation pulses that cut the sun, mild temperatures",
		Defaults: Params{Latitude: 37.8, MeanTemp: 13, WarmingPerDay: 0.05,
			DiurnalAmplitude: 4, SynopticAmplitude: 2.5, MeanRH: 82, MeanWind: 5, Stress: 1},
		kind: overlayFog,
	},
	{
		Name:        "monsoon",
		Description: "pre-monsoon heat breaking into saturated monsoon bursts after two weeks",
		Defaults: Params{Latitude: 19.1, MeanTemp: 29, WarmingPerDay: 0,
			DiurnalAmplitude: 4.5, SynopticAmplitude: 2, MeanRH: 70, MeanWind: 3, Stress: 1},
		kind: overlayMonsoon,
	},
}

// Families returns the library sorted by name.
func Families() []Family {
	out := append([]Family(nil), families...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted family names.
func Names() []string {
	fs := Families()
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Name
	}
	return out
}

// Lookup returns a family by name.
func Lookup(name string) (Family, error) {
	for _, f := range families {
		if f.Name == name {
			return f, nil
		}
	}
	return Family{}, fmt.Errorf("climate: unknown family %q (have %v)", name, Names())
}

// Model builds the family at its default parameters.
func (f Family) Model(epoch time.Time, seed string) (weather.Model, error) {
	return build(f, f.Defaults, epoch, seed)
}

// New builds a named family with explicit parameters. The seed feeds every
// stochastic perturbation (synoptic harmonics, overlay phases), so a
// (family, params, epoch, seed) tuple is byte-identically replayable.
func New(name string, p Params, epoch time.Time, seed string) (weather.Model, error) {
	f, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return build(f, p, epoch, seed)
}

// build assembles the base synthetic model and the family overlay.
func build(f Family, p Params, epoch time.Time, seed string) (weather.Model, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", f.Name, err)
	}
	if epoch.IsZero() {
		return nil, fmt.Errorf("climate: %s needs a non-zero epoch", f.Name)
	}
	cfg := weather.Config{
		Epoch:             epoch,
		Latitude:          p.Latitude,
		MeanTempAtEpoch:   p.MeanTemp,
		WarmingPerDay:     p.WarmingPerDay,
		DiurnalAmplitude:  p.DiurnalAmplitude,
		SynopticAmplitude: p.SynopticAmplitude,
		MeanRH:            p.MeanRH,
		MeanWind:          p.MeanWind,
		Seed:              seed + "/" + f.Name,
	}
	if f.kind == overlayColdSnaps && p.Stress > 0 {
		// The paper's winter: a deep anchored snap about two weeks in and a
		// secondary one, scaled by Stress — the same shape the calibrated
		// ReferenceWinter0910 uses.
		cfg.ColdSnaps = []weather.ColdSnap{
			{Center: epoch.AddDate(0, 0, 13), Depth: 13.5 * p.Stress, HalfWidth: 26 * time.Hour},
			{Center: epoch.AddDate(0, 0, 24), Depth: 7 * p.Stress, HalfWidth: 16 * time.Hour},
		}
	}
	base, err := weather.NewSynthetic(cfg)
	if err != nil {
		return nil, fmt.Errorf("climate: %s: %w", f.Name, err)
	}
	if f.kind == overlayNone || f.kind == overlayColdSnaps || p.Stress == 0 {
		return base, nil
	}
	rng := simkernel.NewRNG(seed + "/" + f.Name + "/overlay")
	ov := &overlay{
		base:     base,
		kind:     f.kind,
		stress:   p.Stress,
		epoch:    epoch,
		latitude: p.Latitude,
	}
	mix := func(stream string, n int, minP, maxP time.Duration) []harmonic {
		hs := make([]harmonic, n)
		for i := range hs {
			frac := float64(i) / float64(n)
			hs[i] = harmonic{
				amp:    rng.Uniform(stream, 0.5, 1.0) / float64(n) * 2,
				period: time.Duration(float64(minP) + frac*float64(maxP-minP)),
				phase:  rng.Uniform(stream, 0, 2*math.Pi),
			}
		}
		return hs
	}
	switch f.kind {
	case overlayFog:
		// Fog index wanders on synoptic-ish scales; banks roll in when it
		// exceeds the threshold, more often at higher stress.
		ov.index = mix("fog", 5, 18*time.Hour, 4*24*time.Hour)
		ov.threshold = 0.55 - 0.35*p.Stress
	case overlayMonsoon:
		// Onset ramps in after two weeks; bursts modulate within the season.
		ov.index = mix("burst", 4, 9*time.Hour, 3*24*time.Hour)
		ov.onset = epoch.AddDate(0, 0, 14)
		ov.ramp = 5 * 24 * time.Hour
	case overlayTropical:
		// Small wandering component on top of the deterministic night cycle.
		ov.index = mix("night", 3, 12*time.Hour, 2*24*time.Hour)
	}
	return ov, nil
}

// harmonic is one component of an overlay's seeded sinusoid mixture.
type harmonic struct {
	amp    float64
	period time.Duration
	phase  float64
}

func (h harmonic) at(t, epoch time.Time) float64 {
	x := t.Sub(epoch).Seconds() / h.period.Seconds()
	return h.amp * math.Sin(2*math.Pi*x+h.phase)
}

// overlay applies a family's characteristic transform on top of the base
// synthetic conditions. It is a pure function of time (the harmonic
// mixtures are immutable after construction), so it inherits the base
// model's determinism; cloning shares the mixtures and clones the base,
// keeping per-shard copies race-free exactly like weather.Synthetic.
type overlay struct {
	base     weather.Cloner
	kind     overlayKind
	stress   float64
	epoch    time.Time
	latitude float64

	index     []harmonic
	threshold float64
	onset     time.Time
	ramp      time.Duration
}

// At implements weather.Model.
func (o *overlay) At(t time.Time) weather.Conditions {
	c := o.base.At(t)
	switch o.kind {
	case overlayTropical:
		// Nights near the equator saturate: once the sun is below the
		// horizon the boundary layer cools to its dew point, driving RH
		// toward saturation — the condensation-stress regime the control
		// plane's dew-point guard exists for.
		elev := weather.SolarElevation(o.latitude, t)
		night := clamp01(-elev / 10)
		wander := 0.0
		for _, h := range o.index {
			wander += h.at(t, o.epoch)
		}
		nf := clamp01(night*(0.8+0.2*wander)) * o.stress
		// Pull toward saturation, never drying air that is already wetter
		// than the night target.
		if target := 99.8; float64(c.RH) < target {
			rh := float64(c.RH) + (target-float64(c.RH))*nf
			c.RH = units.RelHumidity(rh).Clamp()
		}
	case overlayFog:
		idx := 0.0
		for _, h := range o.index {
			idx += h.at(t, o.epoch)
		}
		if idx > o.threshold {
			f := clamp01((idx - o.threshold) / 0.3)
			c.RH = units.RelHumidity(float64(c.RH) + (100-float64(c.RH))*0.9*f).Clamp()
			c.Irradiance *= units.WattsPerSquareMeter(1 - 0.85*f)
			c.Temp -= units.Celsius(2.5 * f)
		}
	case overlayMonsoon:
		m := 0.0
		if t.After(o.onset) {
			m = clamp01(float64(t.Sub(o.onset)) / float64(o.ramp))
		}
		if m > 0 {
			burst := 0.7
			for _, h := range o.index {
				burst += h.at(t, o.epoch)
			}
			burst = clamp01(burst)
			mm := m * o.stress
			c.RH = units.RelHumidity(float64(c.RH) + (98-float64(c.RH))*mm*burst).Clamp()
			c.Irradiance *= units.WattsPerSquareMeter(1 - 0.6*mm*burst)
			c.Temp -= units.Celsius(3 * mm * burst)
			c.Wind += units.MetersPerSecond(4 * mm * burst)
		}
	}
	return c
}

// CloneModel implements weather.Cloner: the harmonic mixtures are shared
// (immutable after construction), the memoizing base model is cloned.
func (o *overlay) CloneModel() weather.Model {
	c := *o
	c.base = o.base.CloneModel().(weather.Cloner)
	return &c
}

// ReadCSV imports a recorded weather trace (the cmd/weathergen /
// weather.WriteTraceCSV format) as a climate source, so real station data
// drops into any site slot of a multi-site fleet.
func ReadCSV(r io.Reader) (*weather.Trace, error) {
	tr, err := weather.ReadTraceCSV(r)
	if err != nil {
		return nil, fmt.Errorf("climate: %w", err)
	}
	return tr, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
