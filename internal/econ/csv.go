package econ

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// Trace replays recorded grid rates with linear interpolation between
// samples, mirroring weather.Trace: a real market export (Nord Pool spot,
// a grid operator's carbon feed) substitutes for the synthetic tariff
// without touching downstream code.
type Trace struct {
	points []tracePoint
}

type tracePoint struct {
	at time.Time
	r  Rates
}

// NewTrace builds a trace from (time, rates) samples, sorted by time; at
// least one sample is required.
func NewTrace(times []time.Time, rates []Rates) (*Trace, error) {
	if len(times) == 0 || len(times) != len(rates) {
		return nil, fmt.Errorf("econ: trace needs equal, non-zero sample counts (got %d times, %d rates)", len(times), len(rates))
	}
	tr := &Trace{points: make([]tracePoint, len(times))}
	for i := range times {
		tr.points[i] = tracePoint{at: times[i], r: rates[i]}
	}
	sort.Slice(tr.points, func(i, j int) bool { return tr.points[i].at.Before(tr.points[j].at) })
	return tr, nil
}

// Span returns the first and last sample times.
func (tr *Trace) Span() (time.Time, time.Time) {
	return tr.points[0].at, tr.points[len(tr.points)-1].at
}

// At implements Source: held at the endpoints, linearly interpolated in
// between.
func (tr *Trace) At(t time.Time) Rates {
	pts := tr.points
	if !t.After(pts[0].at) {
		return pts[0].r
	}
	if !t.Before(pts[len(pts)-1].at) {
		return pts[len(pts)-1].r
	}
	i := sort.Search(len(pts), func(i int) bool { return !pts[i].at.Before(t) })
	a, b := pts[i-1], pts[i]
	span := b.at.Sub(a.at).Seconds()
	frac := 0.0
	if span > 0 {
		frac = t.Sub(a.at).Seconds() / span
	}
	lerp := func(x, y float64) float64 { return x + frac*(y-x) }
	return Rates{
		Price:  lerp(a.r.Price, b.r.Price),
		Carbon: lerp(a.r.Carbon, b.r.Carbon),
	}
}

const traceTimeLayout = "2006-01-02 15:04:05"

// WriteTraceCSV samples the source at the given interval over [from, to]
// and writes a three-column CSV (timestamp, price_usd_kwh, carbon_g_kwh).
func WriteTraceCSV(w io.Writer, s Source, from, to time.Time, step time.Duration) error {
	if step <= 0 {
		return fmt.Errorf("econ: non-positive step %v", step)
	}
	if to.Before(from) {
		return fmt.Errorf("econ: trace range ends (%v) before it starts (%v)", to, from)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"timestamp", "price_usd_kwh", "carbon_g_kwh"}); err != nil {
		return err
	}
	for t := from; !t.After(to); t = t.Add(step) {
		r := s.At(t)
		rec := []string{
			t.UTC().Format(traceTimeLayout),
			strconv.FormatFloat(r.Price, 'f', 5, 64),
			strconv.FormatFloat(r.Carbon, 'f', 2, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTraceCSV parses a trace written by WriteTraceCSV. Negative prices
// and intensities are clamped at zero, matching the synthetic model.
func ReadTraceCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("econ: reading trace header: %w", err)
	}
	if len(header) != 3 {
		return nil, fmt.Errorf("econ: want 3 trace columns, got %d", len(header))
	}
	var times []time.Time
	var rates []Rates
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("econ: trace line %d: %w", line, err)
		}
		at, err := time.Parse(traceTimeLayout, rec[0])
		if err != nil {
			return nil, fmt.Errorf("econ: trace line %d timestamp: %w", line, err)
		}
		price, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("econ: trace line %d price: %w", line, err)
		}
		carbon, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("econ: trace line %d carbon: %w", line, err)
		}
		if price != price || carbon != carbon { // NaN guards
			return nil, fmt.Errorf("econ: trace line %d: NaN rate", line)
		}
		if price < 0 {
			price = 0
		}
		if carbon < 0 {
			carbon = 0
		}
		times = append(times, at.UTC())
		rates = append(rates, Rates{Price: price, Carbon: carbon})
	}
	return NewTrace(times, rates)
}
