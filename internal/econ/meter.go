package econ

import (
	"fmt"
	"math"
	"time"

	"frostlab/internal/units"
)

// Meter is a per-site cost and carbon accumulator. The multi-site engine
// calls Accumulate once per dispatch tick with the site's IT and
// ventilation power and the instantaneous grid rates, and credits
// completed, shed, and migrated work-cycles as the dispatcher routes load.
//
// All fields are plain accumulators — no maps, no allocation — so metering
// fits inside the 0-alloc warm tick budget, and the meter is embeddable by
// value in struct-of-arrays site state.
type Meter struct {
	// ITEnergy is energy drawn by the hardware itself.
	ITEnergy units.KilowattHours
	// VentEnergy is energy drawn by ventilation fans (cube-law of damper).
	VentEnergy units.KilowattHours
	// CostUSD is the total electricity spend, $.
	CostUSD float64
	// CarbonG is the total emitted carbon, gCO₂.
	CarbonG float64
	// CyclesDone counts completed work-cycles at this site (fractional:
	// a site completing half a cycle this tick adds 0.5).
	CyclesDone float64
	// CyclesShed counts cycles that were assigned here but dropped because
	// the site was unsafe or duty-limited and no other site took them.
	CyclesShed float64
	// CyclesIn / CyclesOut count cycles migrated into / out of this site
	// by a placement policy. Conservation across a fleet requires
	// sum(CyclesIn) == sum(CyclesOut).
	CyclesIn, CyclesOut float64
	// MigrationEnergy is the energy surcharge paid for migrations into
	// this site (state transfer, cold caches).
	MigrationEnergy units.KilowattHours
}

// Accumulate charges the meter for one tick of dt at the given IT and
// ventilation draw under the given grid rates.
func (m *Meter) Accumulate(dt time.Duration, it, vent units.Watts, r Rates) {
	h := dt.Hours()
	itE := it.Energy(h)
	ventE := vent.Energy(h)
	m.ITEnergy += itE
	m.VentEnergy += ventE
	e := float64(itE + ventE)
	m.CostUSD += e * r.Price
	m.CarbonG += e * r.Carbon
}

// ChargeMigration books the energy surcharge for migrated-in work at the
// given rates. cycles is the number of work-cycles moving in; perCycle is
// the transfer energy per cycle.
func (m *Meter) ChargeMigration(cycles float64, perCycle units.KilowattHours, r Rates) {
	e := float64(perCycle) * cycles
	m.MigrationEnergy += units.KilowattHours(e)
	m.CostUSD += e * r.Price
	m.CarbonG += e * r.Carbon
}

// Energy returns the total metered energy, kWh.
func (m *Meter) Energy() units.KilowattHours {
	return m.ITEnergy + m.VentEnergy + m.MigrationEnergy
}

// CostPerCycle returns $/completed work-cycle, or NaN with zero cycles.
func (m *Meter) CostPerCycle() float64 {
	if m.CyclesDone == 0 {
		return math.NaN()
	}
	return m.CostUSD / m.CyclesDone
}

// CarbonPerCycle returns gCO₂/completed work-cycle, or NaN with zero cycles.
func (m *Meter) CarbonPerCycle() float64 {
	if m.CyclesDone == 0 {
		return math.NaN()
	}
	return m.CarbonG / m.CyclesDone
}

// EffectivePrice returns the average realised price, $/kWh.
func (m *Meter) EffectivePrice() float64 {
	e := float64(m.Energy())
	if e == 0 {
		return 0
	}
	return m.CostUSD / e
}

// Merge folds another meter into this one (fleet roll-up).
func (m *Meter) Merge(o Meter) {
	m.ITEnergy += o.ITEnergy
	m.VentEnergy += o.VentEnergy
	m.CostUSD += o.CostUSD
	m.CarbonG += o.CarbonG
	m.CyclesDone += o.CyclesDone
	m.CyclesShed += o.CyclesShed
	m.CyclesIn += o.CyclesIn
	m.CyclesOut += o.CyclesOut
	m.MigrationEnergy += o.MigrationEnergy
}

// CheckConservation verifies the fleet-level cost-accounting invariant
// over per-site meters: every demanded cycle is either completed or shed
// (within tol), and migrations balance — work cannot vanish in transit.
func CheckConservation(sites []Meter, demanded float64, tol float64) error {
	var total Meter
	for i := range sites {
		total.Merge(sites[i])
	}
	if d := math.Abs(total.CyclesIn - total.CyclesOut); d > tol {
		return fmt.Errorf("econ: migration imbalance: %.6f cycles in vs %.6f out", total.CyclesIn, total.CyclesOut)
	}
	if d := math.Abs((total.CyclesDone + total.CyclesShed) - demanded); d > tol {
		return fmt.Errorf("econ: cycle leak: done %.6f + shed %.6f != demanded %.6f",
			total.CyclesDone, total.CyclesShed, demanded)
	}
	return nil
}
