package econ

import (
	"math"
	"strings"
	"testing"
)

// FuzzReadTraceCSV drives the tariff CSV import with arbitrary input: it
// must never panic, and any trace that parses must yield finite,
// non-negative rates everywhere it is sampled.
func FuzzReadTraceCSV(f *testing.F) {
	f.Add("timestamp,price_usd_kwh,carbon_g_kwh\n" +
		"2010-02-12 00:00:00,0.08000,420.00\n" +
		"2010-02-12 01:00:00,0.07500,410.00\n")
	f.Add("timestamp,price_usd_kwh,carbon_g_kwh\n")
	f.Add("timestamp,price_usd_kwh,carbon_g_kwh\n2010-02-12 00:00:00,-99,1e308\n")
	f.Add("x\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadTraceCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		lo, hi := tr.Span()
		for _, at := range []struct{ r Rates }{
			{tr.At(lo)}, {tr.At(lo.Add(hi.Sub(lo) / 2))}, {tr.At(hi)},
		} {
			if at.r.Price < 0 || at.r.Carbon < 0 {
				t.Fatalf("parsed trace yields negative rates %+v", at.r)
			}
			if math.IsNaN(at.r.Price) || math.IsNaN(at.r.Carbon) {
				t.Fatalf("parsed trace yields NaN rates %+v", at.r)
			}
		}
	})
}
