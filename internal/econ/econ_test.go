package econ

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"frostlab/internal/weather"
)

var testEpoch = weather.ExperimentEpoch

// TestTariffLibrary pins the preset catalogue and its basic shape.
func TestTariffLibrary(t *testing.T) {
	want := []string{"coal-peaker", "diurnal-peak", "flat", "nordic-hydro", "solar-duck"}
	got := TariffNames()
	if len(got) != len(want) {
		t.Fatalf("TariffNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TariffNames() = %v, want %v", got, want)
		}
	}
	for _, tf := range Tariffs() {
		src, err := tf.Source(testEpoch, "lib-seed")
		if err != nil {
			t.Fatalf("%s: %v", tf.Name, err)
		}
		end := testEpoch.AddDate(0, 0, 14)
		for at := testEpoch; at.Before(end); at = at.Add(23 * time.Minute) {
			r := src.At(at)
			if r.Price < 0 || r.Carbon < 0 {
				t.Fatalf("%s at %v: negative rates %+v", tf.Name, at, r)
			}
			if math.IsNaN(r.Price) || math.IsNaN(r.Carbon) {
				t.Fatalf("%s at %v: NaN rates", tf.Name, at)
			}
		}
	}
	if _, err := LookupTariff("barter"); err == nil {
		t.Fatal("unknown tariff accepted")
	}
}

// TestTariffShapes checks the economically meaningful contrasts the E17
// study depends on: hydro is cheap and clean, coal is dirty, the duck
// curve has a midday price valley, evening peaks peak in the evening.
func TestTariffShapes(t *testing.T) {
	avg := func(name string, f func(Rates) float64) float64 {
		tf, err := LookupTariff(name)
		if err != nil {
			t.Fatal(err)
		}
		src, err := tf.Source(testEpoch, "shape-seed")
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		var n int
		end := testEpoch.AddDate(0, 0, 7)
		for at := testEpoch; at.Before(end); at = at.Add(15 * time.Minute) {
			sum += f(src.At(at))
			n++
		}
		return sum / float64(n)
	}
	price := func(r Rates) float64 { return r.Price }
	carbon := func(r Rates) float64 { return r.Carbon }
	if h, c := avg("nordic-hydro", price), avg("coal-peaker", price); h >= c {
		t.Errorf("hydro price %.3f should undercut coal %.3f", h, c)
	}
	if h, c := avg("nordic-hydro", carbon), avg("coal-peaker", carbon); h >= c/4 {
		t.Errorf("hydro carbon %.0f should be far below coal %.0f", h, c)
	}

	// Duck curve: midday cheaper than evening.
	tf, _ := LookupTariff("solar-duck")
	src, _ := tf.Source(testEpoch, "shape-seed")
	day := testEpoch.AddDate(0, 0, 3)
	noon := src.At(day.Add(13 * time.Hour))
	evening := src.At(day.Add(19 * time.Hour))
	if noon.Price >= evening.Price {
		t.Errorf("duck curve inverted: noon %.3f, evening %.3f", noon.Price, evening.Price)
	}
	if noon.Carbon >= evening.Carbon {
		t.Errorf("solar midday should be cleaner: noon %.0f g, evening %.0f g", noon.Carbon, evening.Carbon)
	}
}

// TestTariffDeterminism: same (preset, epoch, seed) → identical rate paths;
// different seed perturbs the wander (when the preset has any volatility).
func TestTariffDeterminism(t *testing.T) {
	for _, tf := range Tariffs() {
		a, _ := tf.Source(testEpoch, "det")
		b, _ := tf.Source(testEpoch, "det")
		o, _ := tf.Source(testEpoch, "det-2")
		diverged := false
		end := testEpoch.AddDate(0, 0, 10)
		for at := testEpoch; at.Before(end); at = at.Add(37 * time.Minute) {
			if a.At(at) != b.At(at) {
				t.Fatalf("%s at %v: same seed diverged", tf.Name, at)
			}
			if a.At(at) != o.At(at) {
				diverged = true
			}
		}
		if tf.Defaults.Volatility > 0 && !diverged {
			t.Errorf("%s: different seeds produced identical paths", tf.Name)
		}
	}
}

func TestTariffConfigValidate(t *testing.T) {
	good := TariffConfig{Epoch: testEpoch, BasePrice: 0.1, BaseCarbon: 400, PeakHour: 18}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []TariffConfig{
		{BasePrice: 0.1, BaseCarbon: 400, PeakHour: 18},                               // zero epoch
		{Epoch: testEpoch, BasePrice: -1, BaseCarbon: 400},                            // negative price
		{Epoch: testEpoch, BasePrice: 0.1, BaseCarbon: 400, PeakHour: 25},             // bad hour
		{Epoch: testEpoch, BasePrice: 0.1, BaseCarbon: 400, DiurnalAmp: -0.1},         // negative amp
		{Epoch: testEpoch, BasePrice: 0.1, BaseCarbon: 400, PeakHour: 1, Volatility: -1}, // negative vol
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestVentPower checks the cube-law endpoints and monotonicity.
func TestVentPower(t *testing.T) {
	if got := VentPower(0, 400); got != 0 {
		t.Errorf("VentPower(0) = %v, want 0", got)
	}
	if got := VentPower(1, 400); got != 400 {
		t.Errorf("VentPower(1) = %v, want 400", got)
	}
	if got := VentPower(0.5, 400); math.Abs(float64(got)-50) > 1e-9 {
		t.Errorf("VentPower(0.5) = %v, want 50 (cube law)", got)
	}
	if got := VentPower(-1, 400); got != 0 {
		t.Errorf("VentPower clamps below 0, got %v", got)
	}
	if got := VentPower(2, 400); got != 400 {
		t.Errorf("VentPower clamps above 1, got %v", got)
	}
}

// TestMeterAccounting exercises accumulate/migrate/merge and the derived
// per-cycle figures.
func TestMeterAccounting(t *testing.T) {
	var m Meter
	r := Rates{Price: 0.10, Carbon: 500}
	// One hour at 1 kW IT + 100 W vent = 1.1 kWh → $0.11, 550 g.
	m.Accumulate(time.Hour, 1000, 100, r)
	if math.Abs(float64(m.Energy())-1.1) > 1e-9 {
		t.Fatalf("energy = %v, want 1.1 kWh", m.Energy())
	}
	if math.Abs(m.CostUSD-0.11) > 1e-9 {
		t.Fatalf("cost = %v, want 0.11", m.CostUSD)
	}
	if math.Abs(m.CarbonG-550) > 1e-6 {
		t.Fatalf("carbon = %v, want 550", m.CarbonG)
	}
	if !math.IsNaN(m.CostPerCycle()) {
		t.Fatal("CostPerCycle with zero cycles should be NaN")
	}
	m.CyclesDone = 2
	if math.Abs(m.CostPerCycle()-0.055) > 1e-9 {
		t.Fatalf("cost/cycle = %v, want 0.055", m.CostPerCycle())
	}
	if math.Abs(m.CarbonPerCycle()-275) > 1e-6 {
		t.Fatalf("carbon/cycle = %v, want 275", m.CarbonPerCycle())
	}
	if math.Abs(m.EffectivePrice()-0.10) > 1e-9 {
		t.Fatalf("effective price = %v, want 0.10", m.EffectivePrice())
	}
	m.ChargeMigration(4, 0.05, r) // 0.2 kWh surcharge
	if math.Abs(float64(m.MigrationEnergy)-0.2) > 1e-9 {
		t.Fatalf("migration energy = %v, want 0.2", m.MigrationEnergy)
	}
	if math.Abs(m.CostUSD-0.13) > 1e-9 {
		t.Fatalf("cost after migration = %v, want 0.13", m.CostUSD)
	}

	var fleet Meter
	fleet.Merge(m)
	fleet.Merge(m)
	if math.Abs(fleet.CostUSD-2*m.CostUSD) > 1e-9 || fleet.CyclesDone != 4 {
		t.Fatalf("merge lost value: %+v", fleet)
	}
}

// TestCheckConservation covers the invariant both ways.
func TestCheckConservation(t *testing.T) {
	sites := []Meter{
		{CyclesDone: 6, CyclesShed: 1, CyclesOut: 2},
		{CyclesDone: 3, CyclesIn: 2},
	}
	if err := CheckConservation(sites, 10, 1e-9); err != nil {
		t.Fatalf("balanced fleet rejected: %v", err)
	}
	if err := CheckConservation(sites, 11, 1e-9); err == nil {
		t.Fatal("cycle leak not detected")
	}
	sites[1].CyclesIn = 3
	if err := CheckConservation(sites, 10, 1e-9); err == nil {
		t.Fatal("migration imbalance not detected")
	}
}

// TestTraceCSV round-trips a synthetic tariff through CSV and checks the
// interpolating replay plus malformed-input rejection.
func TestTraceCSV(t *testing.T) {
	tf, _ := LookupTariff("diurnal-peak")
	src, err := tf.Source(testEpoch, "csv-seed")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	end := testEpoch.Add(72 * time.Hour)
	if err := WriteTraceCSV(&buf, src, testEpoch, end, 30*time.Minute); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTraceCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := tr.Span()
	if !lo.Equal(testEpoch) || !hi.Equal(end) {
		t.Fatalf("span [%v, %v], want [%v, %v]", lo, hi, testEpoch, end)
	}
	at := testEpoch.Add(7*time.Hour + 15*time.Minute) // between samples
	got, want := tr.At(at), src.At(at)
	if math.Abs(got.Price-want.Price) > 0.002 {
		t.Fatalf("replayed price %v, want ≈ %v", got.Price, want.Price)
	}
	// Held endpoints.
	if tr.At(testEpoch.Add(-time.Hour)) != tr.At(testEpoch) {
		t.Fatal("trace not held before first sample")
	}

	for _, bad := range []string{
		"",
		"a,b\n",
		"timestamp,price_usd_kwh,carbon_g_kwh\nnot-a-time,1,2\n",
		"timestamp,price_usd_kwh,carbon_g_kwh\n2010-02-12 00:00:00,x,2\n",
		"timestamp,price_usd_kwh,carbon_g_kwh\n2010-02-12 00:00:00,1,NaN\n",
		"timestamp,price_usd_kwh,carbon_g_kwh\n", // no samples
	} {
		if _, err := ReadTraceCSV(strings.NewReader(bad)); err == nil {
			t.Errorf("malformed trace accepted: %q", bad)
		}
	}

	// Negative rates clamp to zero on import.
	neg := "timestamp,price_usd_kwh,carbon_g_kwh\n2010-02-12 00:00:00,-5,-10\n"
	ntr, err := ReadTraceCSV(strings.NewReader(neg))
	if err != nil {
		t.Fatal(err)
	}
	if r := ntr.At(testEpoch); r.Price != 0 || r.Carbon != 0 {
		t.Fatalf("negative rates not clamped: %+v", r)
	}
}
