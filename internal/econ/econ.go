// Package econ adds the economics plane to frostlab: electricity-price and
// carbon-intensity traces, and a per-site cost meter that folds IT power,
// ventilation power, and shed or migrated work into the study's headline
// figures — dollars and grams of CO₂ per completed tar+bzip2+md5
// work-cycle.
//
// The paper's result is thermal ("servers survive around zero degrees");
// the economics plane supplies the objective that makes multi-site control
// interesting: a watt in Helsinki at night on Nordic hydro is not a watt in
// a desert afternoon on a coal peaker. Tariff sources mirror the weather
// plane's design — synthetic diurnal/seasonal models built from seeded
// harmonic mixtures (pure functions of time, byte-identically replayable)
// plus CSV trace import — so a site is (climate, tariff, controller) and
// every leg of that tuple replays exactly.
package econ

import (
	"fmt"
	"math"
	"sort"
	"time"

	"frostlab/internal/simkernel"
	"frostlab/internal/units"
)

// Rates is one snapshot of the grid at a site: the spot electricity price
// and the marginal carbon intensity of the generation mix.
type Rates struct {
	// Price in $/kWh.
	Price float64
	// Carbon in gCO₂/kWh.
	Carbon float64
}

// Source yields grid rates at any instant. Implementations are pure
// functions of time, safe to share across goroutines after construction.
type Source interface {
	At(t time.Time) Rates
}

// TariffConfig parameterises a synthetic tariff.
type TariffConfig struct {
	// Epoch anchors phases, like weather.Config.Epoch.
	Epoch time.Time
	// BasePrice is the mean spot price, $/kWh.
	BasePrice float64
	// DiurnalAmp is the half-range of the daily price cycle, $/kWh,
	// peaking at PeakHour.
	DiurnalAmp float64
	// DuckAmp carves a midday valley into the price (negative price
	// pressure from solar), $/kWh; 0 disables it.
	DuckAmp float64
	// PeakHour is the local hour of the daily price maximum.
	PeakHour float64
	// Volatility scales seeded multi-hour price wander, $/kWh.
	Volatility float64
	// BaseCarbon is the mean carbon intensity, gCO₂/kWh.
	BaseCarbon float64
	// CarbonSwing is the half-range of the daily carbon cycle, gCO₂/kWh,
	// peaking with the price (fossil peakers are marginal at peak). When
	// DuckAmp is set, the solar belly also cleans the midday mix.
	CarbonSwing float64
	// Seed names the RNG master seed for the wander harmonics.
	Seed string
}

// Validate checks the tariff parameters.
func (c TariffConfig) Validate() error {
	if c.Epoch.IsZero() {
		return fmt.Errorf("econ: tariff needs a non-zero Epoch")
	}
	if c.BasePrice < 0 || c.BaseCarbon < 0 {
		return fmt.Errorf("econ: negative base price/carbon")
	}
	if c.PeakHour < 0 || c.PeakHour >= 24 {
		return fmt.Errorf("econ: peak hour %v out of [0, 24)", c.PeakHour)
	}
	if c.DiurnalAmp < 0 || c.DuckAmp < 0 || c.Volatility < 0 {
		return fmt.Errorf("econ: negative amplitude")
	}
	return nil
}

// Synthetic is a seeded synthetic tariff. Construct with NewSynthetic; the
// zero value is not usable. Unlike weather.Synthetic it keeps no memo: a
// Rates evaluation is a handful of sinusoids, and statelessness makes the
// source trivially safe to share across sites and shards.
type Synthetic struct {
	cfg    TariffConfig
	wander []harmonic
}

type harmonic struct {
	amp    float64
	period time.Duration
	phase  float64
}

func (h harmonic) at(t, epoch time.Time) float64 {
	x := t.Sub(epoch).Seconds() / h.period.Seconds()
	return h.amp * math.Sin(2*math.Pi*x+h.phase)
}

// NewSynthetic builds a synthetic tariff from the config.
func NewSynthetic(cfg TariffConfig) (*Synthetic, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := simkernel.NewRNG(cfg.Seed)
	s := &Synthetic{cfg: cfg}
	const n = 5
	for i := 0; i < n; i++ {
		frac := float64(i) / n
		minP, maxP := 7*time.Hour, 6*24*time.Hour
		s.wander = append(s.wander, harmonic{
			amp:    cfg.Volatility * rng.Uniform("price", 0.4, 1.0) / n * 2,
			period: time.Duration(float64(minP) + frac*float64(maxP-minP)),
			phase:  rng.Uniform("price", 0, 2*math.Pi),
		})
	}
	return s, nil
}

// At implements Source. Prices and intensities are clamped at zero: the
// model does not represent negative-price hours (they exist in real
// markets, but a free-cooling fleet has no storage to exploit them, and a
// sign flip would silently invert every optimisation downstream).
func (s *Synthetic) At(t time.Time) Rates {
	hour := float64(t.Hour()) + float64(t.Minute())/60
	daily := math.Cos(2 * math.Pi * (hour - s.cfg.PeakHour) / 24)
	price := s.cfg.BasePrice + s.cfg.DiurnalAmp*daily
	carbon := s.cfg.BaseCarbon + s.cfg.CarbonSwing*daily
	if s.cfg.DuckAmp > 0 {
		// Solar depresses prices in a belly centred on 13:00 and cleans
		// the marginal mix while it shines.
		belly := math.Exp(-((hour - 13) * (hour - 13)) / (2 * 2.5 * 2.5))
		price -= s.cfg.DuckAmp * belly
		carbon *= 1 - 0.5*belly
	}
	for _, h := range s.wander {
		price += h.at(t, s.cfg.Epoch)
	}
	return Rates{Price: math.Max(0, price), Carbon: math.Max(0, carbon)}
}

// Tariff is one entry of the tariff preset library.
type Tariff struct {
	// Name is the library key ("nordic-hydro", "coal-peaker", ...).
	Name string
	// Description is the one-line catalogue entry.
	Description string
	// Defaults are the preset's reference parameters (Epoch and Seed are
	// filled in by Source).
	Defaults TariffConfig
}

// The tariff preset library. Magnitudes are stylised 2010-era wholesale
// figures: Nord Pool winter averages near 50 €/MWh, US coal-heavy regions
// near 900 gCO₂/kWh marginal intensity.
var tariffs = []Tariff{
	{
		Name:        "flat",
		Description: "flat baseline: constant price and carbon, isolates thermal effects",
		Defaults:    TariffConfig{BasePrice: 0.08, BaseCarbon: 420, PeakHour: 18},
	},
	{
		Name:        "diurnal-peak",
		Description: "classic evening-peak market: expensive dirty peakers 17–20h",
		Defaults: TariffConfig{BasePrice: 0.10, DiurnalAmp: 0.04, PeakHour: 18,
			Volatility: 0.015, BaseCarbon: 480, CarbonSwing: 140},
	},
	{
		Name:        "nordic-hydro",
		Description: "Nordic hydro/nuclear mix: cheap, clean, nearly flat — the paper's grid",
		Defaults: TariffConfig{BasePrice: 0.055, DiurnalAmp: 0.012, PeakHour: 9,
			Volatility: 0.008, BaseCarbon: 90, CarbonSwing: 25},
	},
	{
		Name:        "coal-peaker",
		Description: "coal-heavy grid with gas peakers: high carbon, sharp afternoon peak",
		Defaults: TariffConfig{BasePrice: 0.12, DiurnalAmp: 0.05, PeakHour: 16,
			Volatility: 0.02, BaseCarbon: 820, CarbonSwing: 180},
	},
	{
		Name:        "solar-duck",
		Description: "high-solar grid: cheap clean midday belly, steep dirty evening ramp",
		Defaults: TariffConfig{BasePrice: 0.11, DiurnalAmp: 0.035, DuckAmp: 0.07,
			PeakHour: 19, Volatility: 0.012, BaseCarbon: 380, CarbonSwing: 160},
	},
}

// Tariffs returns the preset library sorted by name.
func Tariffs() []Tariff {
	out := append([]Tariff(nil), tariffs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TariffNames returns the sorted preset names.
func TariffNames() []string {
	ts := Tariffs()
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name
	}
	return out
}

// LookupTariff returns a preset by name.
func LookupTariff(name string) (Tariff, error) {
	for _, t := range tariffs {
		if t.Name == name {
			return t, nil
		}
	}
	return Tariff{}, fmt.Errorf("econ: unknown tariff %q (have %v)", name, TariffNames())
}

// Source builds the preset's synthetic tariff at the given epoch and seed.
func (tf Tariff) Source(epoch time.Time, seed string) (*Synthetic, error) {
	cfg := tf.Defaults
	cfg.Epoch = epoch
	cfg.Seed = seed + "/tariff/" + tf.Name
	return NewSynthetic(cfg)
}

// VentPower converts a damper position to ventilation (fan) power via the
// cube-law fan affinity relation: a damper fully open with fans at speed
// draws maxFan; throttled flow costs cubically less. The paper's tent used
// passive ventilation plus the machines' own fans; frostlab's enclosures
// scale beyond that, and the cube law is what makes aggressive venting an
// economic decision rather than a free action.
func VentPower(position float64, maxFan units.Watts) units.Watts {
	if position < 0 {
		position = 0
	}
	if position > 1 {
		position = 1
	}
	return units.Watts(float64(maxFan) * position * position * position)
}
