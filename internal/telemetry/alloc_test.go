package telemetry

import (
	"testing"
	"time"
)

// These tests pin the package's core contract: the update path of every
// instrument — and a span emit into a pre-sized tracer ring — performs
// zero allocations, so instrumenting PR 2's zero-alloc simulation hot
// paths cannot regress them.

func TestCounterIncZeroAllocs(t *testing.T) {
	var c Counter
	if avg := testing.AllocsPerRun(1000, c.Inc); avg != 0 {
		t.Errorf("Counter.Inc allocates %.2f objs, want 0", avg)
	}
}

func TestGaugeSetAddZeroAllocs(t *testing.T) {
	var g Gauge
	avg := testing.AllocsPerRun(1000, func() {
		g.Set(3.5)
		g.Add(1)
	})
	if avg != 0 {
		t.Errorf("Gauge.Set+Add allocates %.2f objs, want 0", avg)
	}
}

func TestHistogramObserveZeroAllocs(t *testing.T) {
	h := newHistogram(DefBuckets)
	v := 0.0
	avg := testing.AllocsPerRun(1000, func() {
		h.Observe(v)
		v += 0.1
		if v > 100 {
			v = 0
		}
	})
	if avg != 0 {
		t.Errorf("Histogram.Observe allocates %.2f objs, want 0", avg)
	}
}

func TestCachedVecChildZeroAllocs(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("vec_total", "x", "host")
	child := v.With("01") // hot paths resolve the child once
	if avg := testing.AllocsPerRun(1000, child.Inc); avg != 0 {
		t.Errorf("cached vec child Inc allocates %.2f objs, want 0", avg)
	}
}

func TestTracerEmitZeroAllocs(t *testing.T) {
	tr := NewTracer(1024)
	at := time.Date(2010, 2, 19, 0, 0, 0, 0, time.UTC)
	avg := testing.AllocsPerRun(1000, func() {
		tr.Span("cycle", "sim", 3, at, time.Minute)
		tr.Instant("tick", "sim", 0, at)
		tr.Counter("tent_power_w", at, 570)
		at = at.Add(time.Minute)
	})
	if avg != 0 {
		t.Errorf("tracer emit trio allocates %.2f objs, want 0", avg)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram(DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&1023) / 100)
	}
}

func BenchmarkTracerSpan(b *testing.B) {
	tr := NewTracer(1 << 12)
	at := time.Date(2010, 2, 19, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span("round", "monitor", 1, at, time.Second)
	}
}
