package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// mustParse renders the registry and runs the exposition through the
// in-repo parser, so every rendering test doubles as a format check.
func mustParse(t *testing.T, r *Registry) []Sample {
	t.Helper()
	text := render(t, r)
	samples, err := ParseText(text)
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	return samples
}

func TestCounterGaugeRendering(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("frostlab_test_events_total", "events processed")
	g := r.NewGauge("frostlab_test_depth", "queue depth")
	c.Add(41)
	c.Inc()
	g.Set(3.5)
	g.Add(-1)

	samples := mustParse(t, r)
	if s, ok := FindSample(samples, "frostlab_test_events_total"); !ok || s.Value != 42 {
		t.Errorf("counter sample = %+v, %v; want 42", s, ok)
	}
	if s, ok := FindSample(samples, "frostlab_test_depth"); !ok || s.Value != 2.5 {
		t.Errorf("gauge sample = %+v, %v; want 2.5", s, ok)
	}
	text := render(t, r)
	for _, want := range []string{
		"# HELP frostlab_test_events_total events processed",
		"# TYPE frostlab_test_events_total counter",
		"# TYPE frostlab_test_depth gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestRenderingSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("zz_total", "last")
	r.NewCounter("aa_total", "first")
	v := r.NewGaugeVec("mm_gauge", "middle", "host")
	v.With("02").Set(2)
	v.With("01").Set(1)

	text := render(t, r)
	if text != render(t, r) {
		t.Error("two renders of unchanged registry differ")
	}
	ia, im, iz := strings.Index(text, "aa_total"), strings.Index(text, "mm_gauge"), strings.Index(text, "zz_total")
	if !(ia < im && im < iz) {
		t.Errorf("families not sorted by name:\n%s", text)
	}
	i1 := strings.Index(text, `mm_gauge{host="01"}`)
	i2 := strings.Index(text, `mm_gauge{host="02"}`)
	if i1 < 0 || i2 < 0 || i1 > i2 {
		t.Errorf("vec children not sorted by label value:\n%s", text)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("frostlab_test_latency_seconds", "round latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %v, want 56.05", h.Sum())
	}

	samples := mustParse(t, r)
	wantCum := map[string]float64{"0.1": 1, "1": 3, "10": 4, "+Inf": 5}
	for le, want := range wantCum {
		s, ok := FindSample(samples, "frostlab_test_latency_seconds_bucket", "le", le)
		if !ok || s.Value != want {
			t.Errorf("bucket le=%q = %+v (ok=%v), want %v", le, s, ok, want)
		}
	}
	if s, ok := FindSample(samples, "frostlab_test_latency_seconds_count"); !ok || s.Value != 5 {
		t.Errorf("_count = %+v, want 5", s)
	}
}

func TestVecLabelsAndEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("frostlab_test_retries_total", `per-host "retry" count`, "host", "reason")
	v.With("01", `weird"value`).Add(3)
	v.With("01", "line\nbreak").Inc()
	v.With("02", `back\slash`).Inc()

	samples := mustParse(t, r)
	if s, ok := FindSample(samples, "frostlab_test_retries_total", "host", "01", "reason", `weird"value`); !ok || s.Value != 3 {
		t.Errorf("quoted label sample = %+v (ok=%v)", s, ok)
	}
	if _, ok := FindSample(samples, "frostlab_test_retries_total", "reason", "line\nbreak"); !ok {
		t.Error("newline label value did not round-trip")
	}
	if _, ok := FindSample(samples, "frostlab_test_retries_total", "reason", `back\slash`); !ok {
		t.Error("backslash label value did not round-trip")
	}
	// The same label values must return the same child.
	if v.With("01", `weird"value`).Value() != 3 {
		t.Error("With did not return the existing child")
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	var fired Counter // embedded-by-value style, like the scheduler's
	fired.Add(7)
	r.CounterFunc("frostlab_test_fired_total", "events fired", func() float64 { return float64(fired.Value()) })
	r.GaugeFunc("frostlab_test_pending", "queue depth", func() float64 { return 3 })

	samples := mustParse(t, r)
	if s, _ := FindSample(samples, "frostlab_test_fired_total"); s.Value != 7 {
		t.Errorf("counter func = %v, want 7", s.Value)
	}
	fired.Inc()
	if s, _ := FindSample(mustParse(t, r), "frostlab_test_fired_total"); s.Value != 8 {
		t.Errorf("counter func after Inc = %v, want 8", s.Value)
	}
}

func TestRegistrationPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.NewCounter("ok_total", "fine")
	expectPanic("duplicate", func() { r.NewGauge("ok_total", "dup name") })
	expectPanic("bad name", func() { r.NewCounter("0bad", "leading digit") })
	expectPanic("bad label", func() { r.NewCounterVec("lbl_total", "x", "bad-label") })
	expectPanic("reserved label", func() { r.NewCounterVec("lbl2_total", "x", "__name__") })
	expectPanic("empty buckets", func() { r.NewHistogram("h1", "x", nil) })
	expectPanic("unsorted buckets", func() { r.NewHistogram("h2", "x", []float64{1, 1}) })
}

func TestBucketHelpers(t *testing.T) {
	exp := ExponentialBuckets(1, 2, 4)
	if want := []float64{1, 2, 4, 8}; len(exp) != 4 || exp[3] != want[3] {
		t.Errorf("ExponentialBuckets = %v", exp)
	}
	lin := LinearBuckets(0.5, 0.5, 3)
	if lin[0] != 0.5 || lin[2] != 1.5 {
		t.Errorf("LinearBuckets = %v", lin)
	}
}

// TestConcurrentUpdatesAndScrapes hammers every instrument type from
// many goroutines while scraping, so `go test -race` covers the whole
// concurrency story.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("conc_events_total", "x")
	g := r.NewGauge("conc_depth", "x")
	h := r.NewHistogram("conc_lat_seconds", "x", DefBuckets)
	v := r.NewCounterVec("conc_host_total", "x", "host")

	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			host := string(rune('a' + w))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) / 100)
				v.With(host).Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
			if _, err := ParseText(b.String()); err != nil {
				t.Errorf("mid-flight scrape invalid: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != workers*iters {
		t.Errorf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if g.Value() != workers*iters {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
}

func TestParserRejectsMalformed(t *testing.T) {
	bad := []struct{ name, text string }{
		{"no value", "metric_name\n"},
		{"bad name", "0bad 1\n"},
		{"unclosed braces", `m{host="01" 1` + "\n"},
		{"unquoted label", `m{host=01} 1` + "\n"},
		{"bad escape", `m{host="\q"} 1` + "\n"},
		{"bad value", "m one\n"},
		{"duplicate series", "m 1\nm 2\n"},
		{"dup labels", `m{a="1",a="2"} 1` + "\n"},
		{"bad type", "# TYPE m rainbow\n"},
		{"double type", "# TYPE m counter\n# TYPE m gauge\n"},
		{"bucket order", "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 3\n"},
		{"non-cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n"},
		{"count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 4\n"},
	}
	for _, tc := range bad {
		if _, err := ParseText(tc.text); err == nil {
			t.Errorf("%s: parser accepted %q", tc.name, tc.text)
		}
	}
	good := "# HELP m fine\n# TYPE m counter\nm{host=\"01\"} 1\nm{host=\"02\"} 2 1700000000\n"
	if _, err := ParseText(good); err != nil {
		t.Errorf("parser rejected valid exposition: %v", err)
	}
}
