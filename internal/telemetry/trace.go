package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase identifiers in the Chrome trace-event format.
const (
	phaseComplete = 'X' // a span with a duration
	phaseInstant  = 'i' // a point event
	phaseCounter  = 'C' // a sampled counter track
)

// TraceEvent is one recorded trace entry. Times are absolute; the
// exporter rebases them onto the tracer's epoch so the trace starts at
// t=0 regardless of whether the clock was simulated or wall.
type TraceEvent struct {
	Name  string
	Cat   string
	TID   int
	Start time.Time
	Dur   time.Duration
	Value float64 // counter tracks only
	Phase byte
}

// Tracer records spans, instants and counter samples into a bounded
// ring buffer. When the ring is full the oldest events are overwritten
// and counted in Dropped, so a tracer attached to a long campaign costs
// fixed memory no matter how long it runs.
//
// The emit methods take explicit timestamps instead of reading a clock:
// the simulation plane stamps events with *simulated* time (so a trace
// of a reference run shows the Feb–Mar timeline), while the collection
// plane stamps wall-clock durations. All methods are safe for
// concurrent use; within one timestamp, events keep emit order.
type Tracer struct {
	mu      sync.Mutex
	ring    []TraceEvent
	next    int // ring write cursor
	n       int // events currently held
	dropped uint64
	epoch   time.Time
	haveEp  bool
	threads map[int]string
}

// DefaultTraceCapacity bounds a tracer that did not choose its own: 64k
// events is a full reference run's interesting activity at well under
// 10 MB.
const DefaultTraceCapacity = 1 << 16

// NewTracer returns a tracer holding at most capacity events
// (DefaultTraceCapacity when capacity <= 0). The ring is allocated up
// front so emitting never allocates.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]TraceEvent, capacity), threads: make(map[int]string)}
}

// SetThreadName labels a tid in the exported trace (about:tracing shows
// it as the row name). Call during setup; names emitted as metadata.
func (t *Tracer) SetThreadName(tid int, name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.threads[tid] = name
}

// Span records a complete span starting at start and lasting d.
func (t *Tracer) Span(name, cat string, tid int, start time.Time, d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.emit(TraceEvent{Name: name, Cat: cat, TID: tid, Start: start, Dur: d, Phase: phaseComplete})
}

// Instant records a point event.
func (t *Tracer) Instant(name, cat string, tid int, at time.Time) {
	t.emit(TraceEvent{Name: name, Cat: cat, TID: tid, Start: at, Phase: phaseInstant})
}

// Counter records one sample of a named counter track (rendered by
// about:tracing as a filled graph under the process).
func (t *Tracer) Counter(name string, at time.Time, value float64) {
	t.emit(TraceEvent{Name: name, Start: at, Value: value, Phase: phaseCounter})
}

func (t *Tracer) emit(ev TraceEvent) {
	t.mu.Lock()
	if !t.haveEp || ev.Start.Before(t.epoch) {
		t.epoch = ev.Start
		t.haveEp = true
	}
	if t.n == len(t.ring) {
		t.dropped++
	} else {
		t.n++
	}
	t.ring[t.next] = ev
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
	}
	t.mu.Unlock()
}

// Len reports how many events the ring currently holds.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped reports how many events were overwritten after the ring
// filled.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns the held events oldest-first.
func (t *Tracer) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// WriteChromeTrace exports the held events as a Chrome trace-event JSON
// array, loadable in about:tracing and Perfetto. Timestamps are
// microseconds since the earliest recorded event.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	t.mu.Lock()
	epoch := t.epoch
	names := make(map[int]string, len(t.threads))
	for k, v := range t.threads {
		names[k] = v
	}
	t.mu.Unlock()
	events := t.Events()

	var b strings.Builder
	b.WriteString("[\n")
	first := true
	tids := make([]int, 0, len(names))
	for tid := range names {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		writeSep(&b, &first)
		fmt.Fprintf(&b, `{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`, tid, names[tid])
	}
	for _, ev := range events {
		writeSep(&b, &first)
		ts := ev.Start.Sub(epoch).Microseconds()
		switch ev.Phase {
		case phaseComplete:
			fmt.Fprintf(&b, `{"name":%q,"cat":%q,"ph":"X","ts":%d,"dur":%d,"pid":1,"tid":%d}`,
				ev.Name, ev.Cat, ts, ev.Dur.Microseconds(), ev.TID)
		case phaseInstant:
			fmt.Fprintf(&b, `{"name":%q,"cat":%q,"ph":"i","s":"t","ts":%d,"pid":1,"tid":%d}`,
				ev.Name, ev.Cat, ts, ev.TID)
		case phaseCounter:
			fmt.Fprintf(&b, `{"name":%q,"ph":"C","ts":%d,"pid":1,"args":{%q:%s}}`,
				ev.Name, ts, ev.Name, formatValue(ev.Value))
		}
	}
	b.WriteString("\n]\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSep(b *strings.Builder, first *bool) {
	if *first {
		*first = false
		return
	}
	b.WriteString(",\n")
}
