// Package telemetry is frostlab's observability core: a dependency-free,
// concurrency-safe metrics registry rendering the Prometheus text
// exposition format, plus a bounded span tracer exporting Chrome
// trace-event JSON.
//
// The paper's contribution is measurement — §3.2–3.5 are about
// instrumenting a fleet well enough to trust its numbers — and this
// package turns the same discipline on frostlab itself: every plane
// (simulation kernel, collection loop, campaign pool, HTTP daemons)
// counts what it does and exposes one scrapeable surface, like the
// paper's single collection loop covered the whole tent.
//
// Design constraints, in order:
//
//   - Zero third-party dependencies: everything is stdlib, so the
//     package can be imported from the innermost hot paths without
//     dragging a client library into the build.
//   - Zero allocations on the update path: Counter.Inc, Gauge.Set and
//     Histogram.Observe are single sync/atomic operations, so the
//     instrumented simulation keeps PR 2's zero-allocs-per-tick
//     property (pinned by the AllocsPerRun tests).
//   - Registration happens at startup; the New* constructors panic on
//     invalid or duplicate names, exactly like a bad flag definition.
package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero value
// is ready to use (so counters can be embedded by value in hot structs
// and registered later via Registry.CounterFunc).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down. The zero value is
// a ready-to-use gauge at 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta with a compare-and-swap loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into a fixed cumulative bucket layout.
// The layout is chosen at construction and never changes, so Observe is
// a bucket scan plus three atomic updates — no locks, no allocations.
type Histogram struct {
	upper  []float64 // sorted upper bounds, +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    Gauge // CAS-add float accumulator
}

// newHistogram builds a histogram over the given bucket upper bounds.
func newHistogram(buckets []float64) *Histogram {
	upper := make([]float64, len(buckets))
	copy(upper, buckets)
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// DefBuckets is a general-purpose latency layout in seconds, from 1 ms
// to ~100 s — wide enough for both a 20-minute collection round's
// per-host dial and a multi-second simulation replicate.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}

// ExponentialBuckets returns n upper bounds starting at start and
// multiplying by factor. It panics on a non-positive start, a factor
// not greater than one, or n < 1 — bucket layouts are build-time
// constants, so a bad one is a programming error.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExponentialBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n upper bounds starting at start, spaced by
// width. It panics on n < 1 or width <= 0.
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 || width <= 0 {
		panic("telemetry: LinearBuckets needs width > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start += width
	}
	return out
}

// vec is the shared child table behind CounterVec, GaugeVec and
// HistogramVec: a label-values → child map under a read-mostly lock.
// Callers on hot paths should resolve their child once and cache the
// pointer; With itself is for setup and network-bound paths.
type vec[T any] struct {
	mu       sync.RWMutex
	make     func() *T
	children map[string]*T
	order    []string // insertion-ordered keys; render sorts
}

// with returns the child for the joined key, creating it on first use.
func (v *vec[T]) with(key string) *T {
	v.mu.RLock()
	c, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.children[key]; ok {
		return c
	}
	c = v.make()
	v.children[key] = c
	v.order = append(v.order, key)
	return c
}

// snapshot returns the keys present at call time.
func (v *vec[T]) snapshot() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, len(v.order))
	copy(out, v.order)
	return out
}

func (v *vec[T]) get(key string) *T {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.children[key]
}

// labelSep joins label values into a child key. 0xFF cannot appear in
// valid UTF-8 label values, so the join is unambiguous.
const labelSep = "\xff"

func joinLabelValues(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := len(values) - 1
	for _, s := range values {
		n += len(s)
	}
	b := make([]byte, 0, n)
	for i, s := range values {
		if i > 0 {
			b = append(b, labelSep...)
		}
		b = append(b, s...)
	}
	return string(b)
}

func splitLabelValues(key string) []string {
	var out []string
	for {
		i := indexSep(key)
		if i < 0 {
			return append(out, key)
		}
		out = append(out, key[:i])
		key = key[i+1:]
	}
}

func indexSep(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] == 0xFF {
			return i
		}
	}
	return -1
}

// CounterVec is a counter family partitioned by label values (e.g. one
// retry counter per fleet host).
type CounterVec struct {
	vec vec[Counter]
}

// With returns the counter for the given label values, creating it on
// first use. The value count must match the label names the vec was
// registered with; hot paths should cache the returned pointer.
func (v *CounterVec) With(values ...string) *Counter {
	return v.vec.with(joinLabelValues(values))
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct {
	vec vec[Gauge]
}

// With returns the gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.vec.with(joinLabelValues(values))
}

// HistogramVec is a histogram family partitioned by label values. All
// children share the bucket layout chosen at registration.
type HistogramVec struct {
	vec vec[Histogram]
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.vec.with(joinLabelValues(values))
}
