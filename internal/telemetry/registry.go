package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// kind is a metric family's Prometheus type.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// family is one registered metric name: its metadata plus exactly one
// of the value sources.
type family struct {
	name   string
	help   string
	kind   kind
	labels []string

	counter    *Counter
	gauge      *Gauge
	histogram  *Histogram
	counterVec *CounterVec
	gaugeVec   *GaugeVec
	histVec    *HistogramVec
	valueFn    func() float64
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Registration is mutex-guarded and intended
// for startup; rendering takes a read snapshot and may run concurrently
// with updates (atomic reads observe each instrument's latest value).
type Registry struct {
	mu       sync.RWMutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register validates and stores a family, panicking on misuse: metric
// registration is startup wiring, and a duplicate or malformed name is
// a programming error on par with a duplicate flag.
func (r *Registry) register(f *family) {
	if !validName(f.name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !validName(l) || strings.HasPrefix(l, "__") {
			panic(fmt.Sprintf("telemetry: invalid label name %q on metric %q", l, f.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric name %q", f.name))
	}
	r.byName[f.name] = f
	r.families = append(r.families, f)
}

// validName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// NewHistogram registers and returns a histogram over the given bucket
// upper bounds (ascending; +Inf is implicit).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	checkBuckets(name, buckets)
	h := newHistogram(buckets)
	r.register(&family{name: name, help: help, kind: kindHistogram, histogram: h})
	return h
}

// NewCounterVec registers and returns a counter family partitioned by
// the given label names.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{}
	v.vec.children = make(map[string]*Counter)
	v.vec.make = func() *Counter { return &Counter{} }
	r.register(&family{name: name, help: help, kind: kindCounter, labels: labels, counterVec: v})
	return v
}

// NewGaugeVec registers and returns a gauge family partitioned by the
// given label names.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	v := &GaugeVec{}
	v.vec.children = make(map[string]*Gauge)
	v.vec.make = func() *Gauge { return &Gauge{} }
	r.register(&family{name: name, help: help, kind: kindGauge, labels: labels, gaugeVec: v})
	return v
}

// NewHistogramVec registers and returns a histogram family partitioned
// by the given label names, all children sharing one bucket layout.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	checkBuckets(name, buckets)
	v := &HistogramVec{}
	v.vec.children = make(map[string]*Histogram)
	v.vec.make = func() *Histogram { return newHistogram(buckets) }
	r.register(&family{name: name, help: help, kind: kindHistogram, labels: labels, histVec: v})
	return v
}

// CounterFunc registers a counter whose value is read at scrape time.
// This is how pre-existing atomic counters (a Scheduler's fired-event
// count, the experiment's embedded tick counters) join a registry
// without changing their hot path.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: kindCounter, valueFn: fn})
}

// GaugeFunc registers a gauge whose value is read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: kindGauge, valueFn: fn})
}

func checkBuckets(name string, buckets []float64) {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q needs at least one bucket", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not strictly ascending", name))
		}
	}
}

// WritePrometheus renders every family in the text exposition format
// (version 0.0.4), families sorted by name and series sorted by label
// values, so consecutive scrapes of unchanged values are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.render(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) render(b *strings.Builder) {
	b.WriteString("# HELP ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(f.help))
	b.WriteString("\n# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(f.kind.String())
	b.WriteByte('\n')

	switch {
	case f.counter != nil:
		writeSample(b, f.name, "", float64(f.counter.Value()))
	case f.gauge != nil:
		writeSample(b, f.name, "", f.gauge.Value())
	case f.valueFn != nil:
		writeSample(b, f.name, "", f.valueFn())
	case f.histogram != nil:
		renderHistogram(b, f.name, "", f.histogram)
	case f.counterVec != nil:
		for _, key := range sortedKeys(f.counterVec.vec.snapshot()) {
			writeSample(b, f.name, f.labelPairs(key), float64(f.counterVec.vec.get(key).Value()))
		}
	case f.gaugeVec != nil:
		for _, key := range sortedKeys(f.gaugeVec.vec.snapshot()) {
			writeSample(b, f.name, f.labelPairs(key), f.gaugeVec.vec.get(key).Value())
		}
	case f.histVec != nil:
		for _, key := range sortedKeys(f.histVec.vec.snapshot()) {
			renderHistogram(b, f.name, f.labelPairs(key), f.histVec.vec.get(key))
		}
	}
}

func sortedKeys(keys []string) []string {
	sort.Strings(keys)
	return keys
}

// labelPairs renders a child key into `name="value",…` (no braces).
func (f *family) labelPairs(key string) string {
	values := splitLabelValues(key)
	var b strings.Builder
	for i, name := range f.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	return b.String()
}

// writeSample emits one `name{pairs} value` line. pairs is pre-rendered
// (possibly empty); extra, when non-empty, is appended after pairs —
// used for the histogram le label.
func writeSample(b *strings.Builder, name, pairs string, v float64) {
	writeSampleLE(b, name, pairs, "", v)
}

func writeSampleLE(b *strings.Builder, name, pairs, le string, v float64) {
	b.WriteString(name)
	if pairs != "" || le != "" {
		b.WriteByte('{')
		b.WriteString(pairs)
		if le != "" {
			if pairs != "" {
				b.WriteByte(',')
			}
			b.WriteString(`le="`)
			b.WriteString(le)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

func renderHistogram(b *strings.Builder, name, pairs string, h *Histogram) {
	var cum uint64
	for i, upper := range h.upper {
		cum += h.counts[i].Load()
		writeSampleLE(b, name+"_bucket", pairs, formatValue(upper), float64(cum))
	}
	cum += h.counts[len(h.upper)].Load()
	writeSampleLE(b, name+"_bucket", pairs, "+Inf", float64(cum))
	writeSample(b, name+"_sum", pairs, h.Sum())
	writeSample(b, name+"_count", pairs, float64(cum))
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
