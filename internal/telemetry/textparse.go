package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file is a deliberately small parser for the Prometheus text
// exposition format — enough to validate frostlab's own /metrics output
// in tests (and to let a test assert on an individual series) without
// importing a client library. It checks the structural rules a real
// scraper relies on: HELP/TYPE comment shape, metric-name and label
// syntax, parseable values, no duplicate series, and histogram bucket
// monotonicity.

// Sample is one parsed series sample.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns a label value ("" when absent).
func (s Sample) Label(name string) string { return s.Labels[name] }

// key renders the sample's identity for duplicate detection.
func (s Sample) key() string {
	names := make([]string, 0, len(s.Labels))
	for n := range s.Labels {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(s.Name)
	for _, n := range names {
		b.WriteByte('{')
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(s.Labels[n])
		b.WriteByte('}')
	}
	return b.String()
}

// ParseText parses a Prometheus text-format exposition and returns its
// samples, or an error describing the first structural violation.
func ParseText(text string) ([]Sample, error) {
	var samples []Sample
	typed := make(map[string]string) // metric name -> TYPE
	seen := make(map[string]bool)    // duplicate series detection
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, typed); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if seen[s.key()] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, s.key())
		}
		seen[s.key()] = true
		samples = append(samples, s)
	}
	if err := checkHistograms(samples, typed); err != nil {
		return nil, err
	}
	return samples, nil
}

func parseComment(line string, typed map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return fmt.Errorf("malformed comment %q", line)
	}
	switch fields[1] {
	case "HELP":
		if !validName(fields[2]) {
			return fmt.Errorf("HELP for invalid metric name %q", fields[2])
		}
	case "TYPE":
		if !validName(fields[2]) {
			return fmt.Errorf("TYPE for invalid metric name %q", fields[2])
		}
		if len(fields) != 4 {
			return fmt.Errorf("TYPE line %q missing type", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		if _, dup := typed[fields[2]]; dup {
			return fmt.Errorf("second TYPE line for %q", fields[2])
		}
		typed[fields[2]] = fields[3]
	default:
		return fmt.Errorf("unknown comment keyword %q", fields[1])
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: make(map[string]string)}
	rest := line
	brace := strings.IndexByte(rest, '{')
	space := strings.IndexByte(rest, ' ')
	if space < 0 {
		return s, fmt.Errorf("no value on series line %q", line)
	}
	if brace >= 0 && brace < space {
		s.Name = rest[:brace]
		close := strings.LastIndexByte(rest, '}')
		if close < brace {
			return s, fmt.Errorf("unclosed label braces in %q", line)
		}
		labels, err := parseLabels(rest[brace+1 : close])
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		s.Labels = labels
		rest = strings.TrimSpace(rest[close+1:])
	} else {
		s.Name = rest[:space]
		rest = strings.TrimSpace(rest[space+1:])
	}
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	// A timestamp after the value is legal in the format; frostlab never
	// emits one, but accept it for generality.
	valueField := rest
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		valueField = rest[:i]
	}
	v, err := parseValue(valueField)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", valueField, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	return strconv.ParseFloat(s, 64)
}

func parseLabels(s string) (map[string]string, error) {
	out := make(map[string]string)
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label pair without '='")
		}
		name := strings.TrimSpace(s[:eq])
		if !validName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("unquoted label value for %q", name)
		}
		s = s[1:]
		var val strings.Builder
		i := 0
		for {
			if i >= len(s) {
				return nil, fmt.Errorf("unterminated label value for %q", name)
			}
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("dangling escape in label %q", name)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("bad escape \\%c in label %q", s[i+1], name)
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("duplicate label %q", name)
		}
		out[name] = val.String()
		s = s[i+1:]
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("expected ',' between labels, got %q", s)
			}
			s = strings.TrimSpace(s[1:])
		}
	}
	return out, nil
}

// checkHistograms verifies that every TYPE histogram family has
// monotonically non-decreasing cumulative buckets ending in le="+Inf",
// and that its _count equals the +Inf bucket.
func checkHistograms(samples []Sample, typed map[string]string) error {
	type hist struct {
		lastLE    float64
		lastCount float64
		infCount  float64
		haveInf   bool
	}
	hists := make(map[string]*hist) // family+non-le labels -> state
	groupKey := func(base string, s Sample) string {
		names := make([]string, 0, len(s.Labels))
		for n := range s.Labels {
			if n != "le" {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		var b strings.Builder
		b.WriteString(base)
		for _, n := range names {
			fmt.Fprintf(&b, "{%s=%s}", n, s.Labels[n])
		}
		return b.String()
	}
	for _, s := range samples {
		base, isBucket := strings.CutSuffix(s.Name, "_bucket")
		if !isBucket || typed[base] != "histogram" {
			continue
		}
		key := groupKey(base, s)
		h, ok := hists[key]
		if !ok {
			h = &hist{lastLE: -1e308}
			hists[key] = h
		}
		le := s.Label("le")
		if le == "" {
			return fmt.Errorf("histogram bucket %s without le label", s.Name)
		}
		bound, err := parseValue(le)
		if err != nil {
			return fmt.Errorf("histogram %s: bad le %q", base, le)
		}
		if bound <= h.lastLE {
			return fmt.Errorf("histogram %s: le %q out of order", base, le)
		}
		if s.Value < h.lastCount {
			return fmt.Errorf("histogram %s: bucket counts not cumulative at le=%q", base, le)
		}
		h.lastLE, h.lastCount = bound, s.Value
		if le == "+Inf" {
			h.haveInf, h.infCount = true, s.Value
		}
	}
	for _, s := range samples {
		base, isCount := strings.CutSuffix(s.Name, "_count")
		if !isCount || typed[base] != "histogram" {
			continue
		}
		key := groupKey(base, s)
		if h, ok := hists[key]; ok {
			if !h.haveInf {
				return fmt.Errorf("histogram %s missing le=\"+Inf\" bucket", base)
			}
			if s.Value != h.infCount {
				return fmt.Errorf("histogram %s: _count %v != +Inf bucket %v", base, s.Value, h.infCount)
			}
		}
	}
	return nil
}

// FindSample returns the first sample matching name and all given label
// pairs (alternating key, value), or false.
func FindSample(samples []Sample, name string, labelPairs ...string) (Sample, bool) {
	if len(labelPairs)%2 != 0 {
		panic("telemetry: FindSample needs alternating label key/value pairs")
	}
next:
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		for i := 0; i < len(labelPairs); i += 2 {
			if s.Label(labelPairs[i]) != labelPairs[i+1] {
				continue next
			}
		}
		return s, true
	}
	return Sample{}, false
}
