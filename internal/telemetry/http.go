package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"time"
)

// TextContentType is the Prometheus text exposition content type served
// by MetricsHandler.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// MetricsHandler serves the registry in Prometheus text format.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		_ = r.WritePrometheus(w)
	})
}

// HealthzHandler is a trivial liveness probe: 200 "ok".
func HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
}

// BuildInfo is the build/version report served on /buildinfo by every
// frostlab daemon, assembled from runtime/debug.ReadBuildInfo.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Path      string `json:"path,omitempty"`
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	VCSRev    string `json:"vcs_revision,omitempty"`
	VCSTime   string `json:"vcs_time,omitempty"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
}

// ReadBuildInfo collects the daemon's build identity. It degrades
// gracefully when the binary was built without module or VCS metadata.
func ReadBuildInfo() BuildInfo {
	out := BuildInfo{GoVersion: runtime.Version(), OS: runtime.GOOS, Arch: runtime.GOARCH}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out.Path = bi.Path
	out.Module = bi.Main.Path
	out.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out.VCSRev = s.Value
		case "vcs.time":
			out.VCSTime = s.Value
		}
	}
	return out
}

// BuildInfoHandler serves ReadBuildInfo as JSON.
func BuildInfoHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(ReadBuildInfo())
	})
}

// NewServer wraps a handler in an http.Server with explicit timeouts,
// and is how every frostlab daemon should bind a listener. The stdlib
// zero values mean "wait forever": a client that dials and then
// trickles its request header one byte a minute (slowloris) holds a
// connection — and its goroutine — indefinitely. These bounds evict it.
// WriteTimeout is generous because the same server may carry a pprof
// CPU profile, which legitimately streams for 30 s.
func NewServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// DebugMux is the telemetry listener every daemon serves behind its
// -debug-addr flag: /metrics, /healthz and /buildinfo, plus the
// net/http/pprof suite under /debug/pprof/ when withPprof is set. The
// profiler endpoints are wired explicitly rather than through
// http.DefaultServeMux, so a daemon that leaves pprof off exposes no
// profiling surface at all.
func DebugMux(reg *Registry, withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", MetricsHandler(reg))
	mux.Handle("GET /healthz", HealthzHandler())
	mux.Handle("GET /buildinfo", BuildInfoHandler())
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
