package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

var traceT0 = time.Date(2010, 2, 19, 12, 0, 0, 0, time.UTC)

// chromeEvent mirrors the subset of the trace-event format we emit,
// used to verify the export is loadable JSON with the right fields.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s"`
	Args map[string]any `json:"args"`
}

func exportEvents(t *testing.T, tr *Tracer) []chromeEvent {
	t.Helper()
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var events []chromeEvent
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v\n%s", err, b.String())
	}
	return events
}

func TestTracerExportShape(t *testing.T) {
	tr := NewTracer(64)
	tr.SetThreadName(0, "fleet")
	tr.SetThreadName(3, "host 03")
	tr.Span("outage", "failure", 3, traceT0.Add(time.Hour), 30*time.Minute)
	tr.Instant("install", "host", 3, traceT0)
	tr.Counter("coverage", traceT0.Add(2*time.Hour), 0.89)

	events := exportEvents(t, tr)
	if len(events) != 5 { // 2 metadata + 3 recorded
		t.Fatalf("exported %d events, want 5", len(events))
	}
	byPh := map[string][]chromeEvent{}
	for _, ev := range events {
		byPh[ev.Ph] = append(byPh[ev.Ph], ev)
	}
	if len(byPh["M"]) != 2 {
		t.Errorf("thread metadata events = %d, want 2", len(byPh["M"]))
	}
	span := byPh["X"][0]
	// The epoch is the earliest event (the install at traceT0), so the
	// outage span lands at +1h in microseconds.
	if span.TS != time.Hour.Microseconds() || span.Dur != (30*time.Minute).Microseconds() {
		t.Errorf("span ts/dur = %d/%d", span.TS, span.Dur)
	}
	if span.TID != 3 || span.Cat != "failure" {
		t.Errorf("span fields = %+v", span)
	}
	inst := byPh["i"][0]
	if inst.TS != 0 || inst.S != "t" {
		t.Errorf("instant fields = %+v", inst)
	}
	ctr := byPh["C"][0]
	if v, ok := ctr.Args["coverage"].(float64); !ok || v != 0.89 {
		t.Errorf("counter args = %+v", ctr.Args)
	}
}

func TestTracerRingBounds(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Instant("e", "sim", i, traceT0.Add(time.Duration(i)*time.Minute))
	}
	if tr.Len() != 4 {
		t.Errorf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", tr.Dropped())
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("Events returned %d", len(events))
	}
	// Oldest-first: the survivors are emits 6..9.
	for i, ev := range events {
		if ev.TID != 6+i {
			t.Errorf("event %d has tid %d, want %d (oldest-first order)", i, ev.TID, 6+i)
		}
	}
}

func TestTracerNegativeDurationClamped(t *testing.T) {
	tr := NewTracer(4)
	tr.Span("s", "c", 0, traceT0, -time.Second)
	if ev := tr.Events()[0]; ev.Dur != 0 {
		t.Errorf("negative duration stored as %v, want 0", ev.Dur)
	}
}

func TestTracerEmptyExport(t *testing.T) {
	tr := NewTracer(4)
	events := exportEvents(t, tr)
	if len(events) != 0 {
		t.Errorf("empty tracer exported %d events", len(events))
	}
}
