package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestDebugMuxEndpoints is the table-driven coverage for the telemetry
// HTTP surface: status code, content type, and — for /metrics — that
// the body survives the in-repo text-format parser.
func TestDebugMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("http_test_events_total", "an event counter").Add(5)
	reg.NewHistogram("http_test_lat_seconds", "a latency histogram", DefBuckets).Observe(0.3)

	tests := []struct {
		name        string
		pprof       bool
		method      string
		path        string
		wantStatus  int
		wantCT      string
		wantInBody  string
		parseMetric bool
	}{
		{name: "metrics", method: "GET", path: "/metrics", wantStatus: 200, wantCT: TextContentType, wantInBody: "http_test_events_total 5", parseMetric: true},
		{name: "healthz", method: "GET", path: "/healthz", wantStatus: 200, wantCT: "text/plain; charset=utf-8", wantInBody: "ok"},
		{name: "buildinfo", method: "GET", path: "/buildinfo", wantStatus: 200, wantCT: "application/json", wantInBody: "go_version"},
		{name: "metrics POST rejected", method: "POST", path: "/metrics", wantStatus: 405},
		{name: "unknown path", method: "GET", path: "/nope", wantStatus: 404},
		{name: "pprof off by default", method: "GET", path: "/debug/pprof/", wantStatus: 404},
		{name: "pprof index gated on", pprof: true, method: "GET", path: "/debug/pprof/", wantStatus: 200, wantInBody: "goroutine"},
		{name: "pprof symbol gated on", pprof: true, method: "GET", path: "/debug/pprof/symbol", wantStatus: 200},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewServer(DebugMux(reg, tc.pprof))
			defer srv.Close()
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d; body:\n%s", resp.StatusCode, tc.wantStatus, body)
			}
			if tc.wantCT != "" && resp.Header.Get("Content-Type") != tc.wantCT {
				t.Errorf("content type = %q, want %q", resp.Header.Get("Content-Type"), tc.wantCT)
			}
			if tc.wantInBody != "" && !strings.Contains(string(body), tc.wantInBody) {
				t.Errorf("body missing %q:\n%s", tc.wantInBody, body)
			}
			if tc.parseMetric {
				if _, err := ParseText(string(body)); err != nil {
					t.Errorf("/metrics body invalid: %v", err)
				}
			}
		})
	}
}

func TestBuildInfoHandlerJSON(t *testing.T) {
	rec := httptest.NewRecorder()
	BuildInfoHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/buildinfo", nil))
	var bi BuildInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &bi); err != nil {
		t.Fatalf("buildinfo not JSON: %v\n%s", err, rec.Body.String())
	}
	if bi.GoVersion == "" || bi.OS == "" || bi.Arch == "" {
		t.Errorf("buildinfo missing runtime fields: %+v", bi)
	}
	// Under `go test` the module path is available via ReadBuildInfo.
	if bi.Module != "frostlab" {
		t.Errorf("module = %q, want frostlab", bi.Module)
	}
}
