package failure

import (
	"fmt"
	"testing"
	"time"

	"frostlab/internal/simkernel"
)

func TestDiskParamsValidation(t *testing.T) {
	if err := DefaultDiskParams().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := DefaultDiskParams()
	bad.BasePerHour = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative base hazard accepted")
	}
}

func TestStepDiskValidation(t *testing.T) {
	e := newEngine(t, "disk-validate")
	if _, err := e.StepDisk(t0, 0, "01/0", 30, DefaultDiskParams()); err == nil {
		t.Error("zero step accepted")
	}
	bad := DefaultDiskParams()
	bad.HotPerDegree = -1
	if _, err := e.StepDisk(t0, time.Hour, "01/0", 30, bad); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestDisksRarelyDieInThreeMonths(t *testing.T) {
	// The paper's fleet (~35k disk-hours) saw zero drive deaths; the
	// default hazard must make that the typical outcome.
	e := newEngine(t, "disk-rare")
	deaths := 0
	p := DefaultDiskParams()
	for d := 0; d < 42; d++ { // the fleet's ~42 drives
		id := fmt.Sprintf("h/%d", d)
		for at := t0; at.Before(t0.AddDate(0, 3, 0)); at = at.Add(time.Hour) {
			ev, err := e.StepDisk(at, time.Hour, id, 30, p)
			if err != nil {
				t.Fatal(err)
			}
			if ev != nil {
				deaths++
				break
			}
		}
	}
	if deaths > 2 {
		t.Errorf("%d drive deaths in a fleet-quarter; paper saw 0, expectation ≈ 0.2", deaths)
	}
}

func TestHotDrivesDieFaster(t *testing.T) {
	p := DefaultDiskParams()
	benign := p.HazardPerHour(30)
	hot := p.HazardPerHour(60)
	if hot <= benign {
		t.Errorf("hot hazard %v not above benign %v", hot, benign)
	}
	// Cold adds only a mild penalty — §4's finding extends to drives.
	cold := p.HazardPerHour(-20)
	if cold <= benign {
		t.Errorf("deep-cold hazard %v not above benign %v", cold, benign)
	}
	if cold >= hot {
		t.Errorf("cold penalty %v should stay below heat penalty %v", cold, hot)
	}
}

func TestStepDiskLogsHardFailure(t *testing.T) {
	// Inflate the hazard so a death happens promptly, then check the log.
	e := newEngine(t, "disk-log")
	p := DefaultDiskParams()
	p.BasePerHour = 0.5
	var got *Event
	for at := t0; at.Before(t0.Add(100 * time.Hour)); at = at.Add(time.Hour) {
		ev, err := e.StepDisk(at, time.Hour, "15/0", 35, p)
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil {
			got = ev
			break
		}
	}
	if got == nil {
		t.Fatal("no death at 0.5/h hazard over 100h")
	}
	if got.Kind != Hard || got.Component != DiskDrive {
		t.Errorf("event %+v, want hard disk failure", got)
	}
	if evs := e.EventsFor("15/0"); len(evs) != 1 {
		t.Errorf("log has %d events for the drive", len(evs))
	}
}

func TestStepDiskDeterministic(t *testing.T) {
	run := func() int {
		e, err := NewEngine(DefaultParams(), simkernel.NewRNG("disk-det"))
		if err != nil {
			t.Fatal(err)
		}
		p := DefaultDiskParams()
		p.BasePerHour = 0.05
		n := 0
		for at := t0; at.Before(t0.Add(200 * time.Hour)); at = at.Add(time.Hour) {
			if ev, _ := e.StepDisk(at, time.Hour, "x/0", 30, p); ev != nil {
				n++
			}
		}
		return n
	}
	if a, b := run(), run(); a != b {
		t.Errorf("disk sampling not deterministic: %d vs %d", a, b)
	}
}
