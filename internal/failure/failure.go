// Package failure is frostlab's reliability engine. It turns the paper's
// observed failure statistics into generative models:
//
//   - host-level transient system failures (§4.2.1: two on host 15, none in
//     the control group — 5.6 % of hosts, vs Intel's reported 4.46 %);
//   - pre-existing defect populations (vendor B's known-bad series, the
//     whining network switches that failed identically indoors and out);
//   - environmental stress factors (heat, thermal cycling, extreme
//     humidity, condensation) — deliberately calibrated so that plain cold
//     and high RH add little or nothing, which is the paper's headline
//     negative result;
//   - non-ECC memory soft errors at the paper's estimated rate of roughly
//     one corrupted page per 570 million page operations (§4.2.2).
//
// All sampling draws from named simkernel RNG streams, so experiment runs
// are reproducible.
package failure

import (
	"fmt"
	"math"
	"sort"
	"time"

	"frostlab/internal/simkernel"
	"frostlab/internal/units"
)

// Kind classifies a failure event.
type Kind int

// Failure kinds.
const (
	// Transient: the system crashed or hung but recovers after a reset —
	// both host-15 incidents were initially of this kind.
	Transient Kind = iota
	// Hard: the component is dead and needs replacement.
	Hard
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Hard:
		return "hard"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Component identifies what failed.
type Component string

// Components tracked by the engine.
const (
	System      Component = "system" // whole-host crash/hang, cause unidentified
	Memory      Component = "memory" // silent corruption (soft error)
	NetSwitch   Component = "switch"
	DiskDrive   Component = "disk"
	PowerSupply Component = "psu"
)

// Event is one logged failure.
type Event struct {
	At        time.Time
	SubjectID string // host or switch ID
	Component Component
	Kind      Kind
	Detail    string
}

// Stress is the environmental input to the hazard model for one host and
// one step.
type Stress struct {
	// Ambient is the air temperature around the machine.
	Ambient units.Celsius
	// RH is the ambient relative humidity.
	RH units.RelHumidity
	// CaseAir is the air temperature inside the case.
	CaseAir units.Celsius
	// TempRatePerHour is |d(ambient)/dt| in °C/h — thermal cycling.
	TempRatePerHour float64
	// Condensing reports whether condensation is predicted on the
	// equipment surfaces (see units.CondensationRisk).
	Condensing bool
}

// Params calibrates the engine. The defaults in DefaultParams reproduce the
// paper's statistics in expectation.
type Params struct {
	// BaseTransientPerHour is the healthy-host transient failure hazard.
	BaseTransientPerHour float64
	// WeakTransientPerHour is the hazard of a "weak" individual from a
	// defective series.
	WeakTransientPerHour float64
	// WeakFractionDefective is the probability that a unit from a
	// known-defective series (vendor B) is weak.
	WeakFractionDefective float64
	// WeakFractionHealthy is the same lottery for ordinary units.
	WeakFractionHealthy float64

	// HotCaseThreshold and HotCasePerDegree add hazard when case air runs
	// hot — vendor B's actual defect mechanism (bad airflow).
	HotCaseThreshold units.Celsius
	HotCasePerDegree float64
	// CyclingPerDegreePerHour adds hazard per °C/h of ambient swing.
	CyclingPerDegreePerHour float64
	// ExtremeRHThreshold and ExtremeRHFactor add (mild) hazard above the
	// threshold. The paper found RH of 80–90 % not a certified failure
	// cause, so the default factor is small.
	ExtremeRHThreshold units.RelHumidity
	ExtremeRHFactor    float64
	// CondensationFactor multiplies hazard while condensing. Condensation
	// is the one humidity mechanism §5 takes seriously.
	CondensationFactor float64

	// WhinySwitchMTBF is the mean life of the defective switches; §4.2.1:
	// "both of the switches encountered a failure after a week or so".
	WhinySwitchMTBF time.Duration
	// HealthySwitchMTBF is the mean life of a sound switch.
	HealthySwitchMTBF time.Duration

	// PageFailureRate is the per-page-operation probability of a memory
	// soft error on non-ECC hardware; §4.2.2 estimates "around one in 570
	// million".
	PageFailureRate float64
}

// DefaultParams returns the calibration used by the reference experiment.
func DefaultParams() Params {
	return Params{
		BaseTransientPerHour:  1.2e-5, // ≈ 0.1 expected events per 10k host-hours
		WeakTransientPerHour:  3.5e-3, // a weak unit fails about weekly-to-fortnightly
		WeakFractionDefective: 0.35,
		WeakFractionHealthy:   0.008,

		HotCaseThreshold:        45,
		HotCasePerDegree:        0.08,
		CyclingPerDegreePerHour: 0.01,
		ExtremeRHThreshold:      92,
		ExtremeRHFactor:         1.1,
		CondensationFactor:      25,

		WhinySwitchMTBF:   170 * time.Hour, // "after a week or so"
		HealthySwitchMTBF: 10 * 365 * 24 * time.Hour,

		PageFailureRate: 1.0 / 570e6,
	}
}

// WeakFraction returns the weak-unit lottery probability for a unit that
// is (or is not) from a known-defective series.
func (p Params) WeakFraction(knownDefective bool) float64 {
	if knownDefective {
		return p.WeakFractionDefective
	}
	return p.WeakFractionHealthy
}

// StressMultiplier returns the environmental hazard multiplier for the
// given stress. The transient hazard is the weak-or-base rate times this
// factor; exposing it lets the sharded scale engine compute one multiplier
// per tent-tick and share it across every host under that envelope.
func (p Params) StressMultiplier(s Stress) float64 {
	mult := 1.0
	if s.CaseAir > p.HotCaseThreshold {
		mult += p.HotCasePerDegree * float64(s.CaseAir-p.HotCaseThreshold)
	}
	mult += p.CyclingPerDegreePerHour * s.TempRatePerHour
	if s.RH > p.ExtremeRHThreshold {
		mult *= p.ExtremeRHFactor
	}
	if s.Condensing {
		mult *= p.CondensationFactor
	}
	return mult
}

// TransientHazardPerHour returns a host's transient hazard under stress,
// with the same float operation order as Engine stepping.
func (p Params) TransientHazardPerHour(weak bool, s Stress) float64 {
	h := p.BaseTransientPerHour
	if weak {
		h = p.WeakTransientPerHour
	}
	return h * p.StressMultiplier(s)
}

// PageCorruptionProb returns the probability that one workload cycle
// touching the given number of pages on non-ECC memory suffers at least
// one silent corruption.
func (p Params) PageCorruptionProb(pages int64) float64 {
	if pages <= 0 {
		return 0
	}
	return 1 - powOneMinus(p.PageFailureRate, pages)
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.BaseTransientPerHour < 0 || p.WeakTransientPerHour < p.BaseTransientPerHour {
		return fmt.Errorf("failure: transient hazards inconsistent: base %v, weak %v",
			p.BaseTransientPerHour, p.WeakTransientPerHour)
	}
	if p.WeakFractionDefective < 0 || p.WeakFractionDefective > 1 ||
		p.WeakFractionHealthy < 0 || p.WeakFractionHealthy > 1 {
		return fmt.Errorf("failure: weak fractions out of [0,1]")
	}
	if p.WhinySwitchMTBF <= 0 || p.HealthySwitchMTBF <= 0 {
		return fmt.Errorf("failure: switch MTBFs must be positive")
	}
	if p.PageFailureRate < 0 || p.PageFailureRate > 1 {
		return fmt.Errorf("failure: page failure rate %v out of [0,1]", p.PageFailureRate)
	}
	return nil
}

// hostRec is the engine's per-host state: the weak-unit lottery outcome and
// the host's RNG stream names, interned at registration so the per-step
// draws (every host, every failure tick and workload cycle) concatenate no
// strings. The names are identical to the previous ad-hoc concatenations,
// so the draw sequences are unchanged.
type hostRec struct {
	weak      bool
	sysStream string // "host/"+id
	memStream string // "mem/"+id
}

// Engine samples failures. Create with NewEngine; register each subject
// before stepping it.
type Engine struct {
	params Params
	rng    *simkernel.RNG
	hosts  map[string]*hostRec
	// diskStreams interns "disk/"+diskID per drive on first step.
	diskStreams map[string]string
	log         []Event
}

// NewEngine returns an engine with the given calibration.
func NewEngine(params Params, rng *simkernel.RNG) (*Engine, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		params:      params,
		rng:         rng,
		hosts:       make(map[string]*hostRec),
		diskStreams: make(map[string]string),
	}, nil
}

// Params returns the engine's calibration.
func (e *Engine) Params() Params { return e.params }

// RegisterHost runs the weak-unit lottery for a host. knownDefective marks
// units from vendor B's bad series. Registering twice is a no-op and keeps
// the first draw.
func (e *Engine) RegisterHost(hostID string, knownDefective bool) {
	if _, done := e.hosts[hostID]; done {
		return
	}
	e.hosts[hostID] = &hostRec{
		weak:      e.rng.Bernoulli("weak/"+hostID, e.params.WeakFraction(knownDefective)),
		sysStream: "host/" + hostID,
		memStream: "mem/" + hostID,
	}
}

// Weak reports the lottery outcome for a registered host.
func (e *Engine) Weak(hostID string) bool {
	r, ok := e.hosts[hostID]
	return ok && r.weak
}

// hazardPerHour computes a host's current transient hazard.
func (e *Engine) hazardPerHour(rec *hostRec, s Stress) float64 {
	return e.params.TransientHazardPerHour(rec.weak, s)
}

// StepHost advances one host by dt under the given stress and returns the
// transient system failure event, if one occurred. The caller decides what
// a failure does (crash, reset, relocation); the engine only samples and
// logs it.
func (e *Engine) StepHost(now time.Time, dt time.Duration, hostID string, s Stress) (*Event, error) {
	rec, ok := e.hosts[hostID]
	if !ok {
		return nil, fmt.Errorf("failure: host %q not registered", hostID)
	}
	if dt <= 0 {
		return nil, fmt.Errorf("failure: non-positive step %v", dt)
	}
	h := e.hazardPerHour(rec, s)
	pFail := 1 - expNeg(h*dt.Hours())
	if !e.rng.Bernoulli(rec.sysStream, pFail) {
		return nil, nil
	}
	ev := Event{
		At:        now,
		SubjectID: hostID,
		Component: System,
		Kind:      Transient,
		Detail:    fmt.Sprintf("system failure (hazard %.2e/h, ambient %v, case %v)", h, s.Ambient, s.CaseAir),
	}
	e.log = append(e.log, ev)
	return &ev, nil
}

// RegisterSwitch draws the lifetime of a network switch. Whining units use
// the short defective MTBF regardless of where they run — §4.2.1's
// conclusion that "the problem is inherent in these individual switches".
// It returns the switch's time to failure.
func (e *Engine) RegisterSwitch(switchID string, whining bool) time.Duration {
	mtbf := e.params.HealthySwitchMTBF
	shape := 1.0
	if whining {
		mtbf = e.params.WhinySwitchMTBF
		// Wear-out shape: the defect progresses, so failures cluster
		// around the MTBF rather than being memoryless.
		shape = 2.5
	}
	hours := e.rng.Weibull("switch/"+switchID, shape, mtbf.Hours())
	return time.Duration(hours * float64(time.Hour))
}

// LogSwitchFailure records a switch death at the given instant.
func (e *Engine) LogSwitchFailure(now time.Time, switchID string) Event {
	ev := Event{At: now, SubjectID: switchID, Component: NetSwitch, Kind: Hard,
		Detail: "switch failure (defect inherent to the individual unit)"}
	e.log = append(e.log, ev)
	return ev
}

// CycleCorrupted samples whether one workload cycle that touches the given
// number of memory pages suffers a silent corruption. ECC machines never
// corrupt (single-bit errors are corrected); on non-ECC machines each page
// operation fails independently with PageFailureRate.
func (e *Engine) CycleCorrupted(hostID string, pages int64, ecc bool) bool {
	if ecc || pages <= 0 {
		return false
	}
	p := e.params.PageCorruptionProb(pages)
	stream, ok := e.memStream(hostID)
	if !ok {
		stream = "mem/" + hostID // unregistered host: preserve the old name
	}
	return e.rng.Bernoulli(stream, p)
}

// LogMemoryCorruption records a bad-hash incident.
func (e *Engine) LogMemoryCorruption(now time.Time, hostID string, detail string) Event {
	ev := Event{At: now, SubjectID: hostID, Component: Memory, Kind: Transient, Detail: detail}
	e.log = append(e.log, ev)
	return ev
}

// Log returns all recorded events in time order.
func (e *Engine) Log() []Event {
	out := make([]Event, len(e.log))
	copy(out, e.log)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// EventsFor returns the logged events for one subject.
func (e *Engine) EventsFor(subjectID string) []Event {
	var out []Event
	for _, ev := range e.Log() {
		if ev.SubjectID == subjectID {
			out = append(out, ev)
		}
	}
	return out
}

// memStream returns a registered host's interned memory stream name.
func (e *Engine) memStream(hostID string) (string, bool) {
	r, ok := e.hosts[hostID]
	if !ok {
		return "", false
	}
	return r.memStream, true
}

// expNeg computes exp(-x); x >= 0.
func expNeg(x float64) float64 { return math.Exp(-x) }

// powOneMinus computes (1-p)^n stably for tiny p and large n via
// exp(n*log1p(-p)).
func powOneMinus(p float64, n int64) float64 {
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		return 0
	}
	return math.Exp(float64(n) * math.Log1p(-p))
}
