package failure

import (
	"fmt"
	"time"

	"frostlab/internal/units"
)

// Disk-level hard failures. The paper saw none in three months (§4.2.2:
// "the hard drives have passed their S.M.A.R.T. long test runs"), which is
// what the default hazard predicts — roughly a 2 % annualised failure rate
// means ~0.08 expected deaths across the fleet's ~35k disk-hours. The
// machinery still matters: vendor A's software mirror, vendor B's single
// disk and vendor C's mirror+parity array respond very differently when a
// drive does die, and hardware.StorageLayout.SurvivesDiskFailures encodes
// exactly that.

// DiskParams calibrates the disk hazard model.
type DiskParams struct {
	// BasePerHour is the healthy-drive hazard; 2.3e-6/h ≈ 2% AFR.
	BasePerHour float64
	// HotThreshold and HotPerDegree add hazard per °C above the
	// threshold (drives dislike heat far more than cold).
	HotThreshold units.Celsius
	HotPerDegree float64
	// ColdThreshold and ColdPerDegree add a mild penalty below the
	// threshold (spin-up stress in very cold oil).
	ColdThreshold units.Celsius
	ColdPerDegree float64
}

// DefaultDiskParams matches commodity 2005–2009 drives.
func DefaultDiskParams() DiskParams {
	return DiskParams{
		BasePerHour:   2.3e-6,
		HotThreshold:  45,
		HotPerDegree:  0.10,
		ColdThreshold: -10,
		ColdPerDegree: 0.03,
	}
}

// Validate checks the parameters.
func (p DiskParams) Validate() error {
	if p.BasePerHour < 0 || p.HotPerDegree < 0 || p.ColdPerDegree < 0 {
		return fmt.Errorf("failure: negative disk hazard parameters: %+v", p)
	}
	return nil
}

// HazardPerHour computes a drive's current hazard at the given platter
// temperature. Exported so the sharded scale engine can pool per-spec disk
// hazards without stepping drives through an Engine.
func (p DiskParams) HazardPerHour(temp units.Celsius) float64 {
	h := p.BasePerHour
	if temp > p.HotThreshold {
		h *= 1 + p.HotPerDegree*float64(temp-p.HotThreshold)
	}
	if temp < p.ColdThreshold {
		h *= 1 + p.ColdPerDegree*float64(p.ColdThreshold-temp)
	}
	return h
}

// StepDisk advances one drive by dt at the given platter temperature and
// returns a Hard failure event if the drive died. diskID should be unique
// per drive (e.g. "01/2").
func (e *Engine) StepDisk(now time.Time, dt time.Duration, diskID string, temp units.Celsius, p DiskParams) (*Event, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("failure: non-positive disk step %v", dt)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	h := p.HazardPerHour(temp)
	pFail := 1 - expNeg(h*dt.Hours())
	// Intern the stream name once per drive: StepDisk runs for every disk
	// on every failure tick, and the name is stable for the drive's life.
	stream, ok := e.diskStreams[diskID]
	if !ok {
		stream = "disk/" + diskID
		e.diskStreams[diskID] = stream
	}
	if !e.rng.Bernoulli(stream, pFail) {
		return nil, nil
	}
	ev := Event{
		At:        now,
		SubjectID: diskID,
		Component: DiskDrive,
		Kind:      Hard,
		Detail:    fmt.Sprintf("drive failure at %v (hazard %.2e/h)", temp, h),
	}
	e.log = append(e.log, ev)
	return &ev, nil
}
