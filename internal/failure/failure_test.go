package failure

import (
	"fmt"
	"testing"
	"time"

	"frostlab/internal/simkernel"
)

var t0 = time.Date(2010, time.February, 19, 12, 0, 0, 0, time.UTC)

func newEngine(t *testing.T, seed string) *Engine {
	t.Helper()
	e, err := NewEngine(DefaultParams(), simkernel.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

var benign = Stress{Ambient: 21, RH: 32, CaseAir: 33}

func TestParamsValidation(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := p
	bad.WeakTransientPerHour = 0
	if err := bad.Validate(); err == nil {
		t.Error("weak < base accepted")
	}
	bad = p
	bad.WeakFractionDefective = 2
	if err := bad.Validate(); err == nil {
		t.Error("fraction > 1 accepted")
	}
	bad = p
	bad.WhinySwitchMTBF = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero MTBF accepted")
	}
	bad = p
	bad.PageFailureRate = 2
	if err := bad.Validate(); err == nil {
		t.Error("page rate > 1 accepted")
	}
}

func TestStepRequiresRegistration(t *testing.T) {
	e := newEngine(t, "reg")
	if _, err := e.StepHost(t0, time.Hour, "ghost", benign); err == nil {
		t.Error("unregistered host accepted")
	}
	e.RegisterHost("01", false)
	if _, err := e.StepHost(t0, time.Hour, "01", benign); err != nil {
		t.Errorf("registered host rejected: %v", err)
	}
	if _, err := e.StepHost(t0, 0, "01", benign); err == nil {
		t.Error("zero step accepted")
	}
}

func TestRegisterIdempotent(t *testing.T) {
	e := newEngine(t, "idem")
	e.RegisterHost("01", true)
	was := e.Weak("01")
	for i := 0; i < 10; i++ {
		e.RegisterHost("01", true)
	}
	if e.Weak("01") != was {
		t.Error("re-registration re-drew the lottery")
	}
}

func TestWeakLotteryFractions(t *testing.T) {
	e := newEngine(t, "lottery")
	weakDefective, weakHealthy := 0, 0
	n := 2000
	for i := 0; i < n; i++ {
		dID, hID := fmt.Sprintf("d%d", i), fmt.Sprintf("h%d", i)
		e.RegisterHost(dID, true)
		e.RegisterHost(hID, false)
		if e.Weak(dID) {
			weakDefective++
		}
		if e.Weak(hID) {
			weakHealthy++
		}
	}
	p := DefaultParams()
	if f := float64(weakDefective) / float64(n); f < p.WeakFractionDefective-0.05 || f > p.WeakFractionDefective+0.05 {
		t.Errorf("defective weak fraction %.3f, want ≈ %v", f, p.WeakFractionDefective)
	}
	if f := float64(weakHealthy) / float64(n); f > p.WeakFractionHealthy*2+0.01 {
		t.Errorf("healthy weak fraction %.3f, want ≈ %v", f, p.WeakFractionHealthy)
	}
}

// monthsOfOperation steps a host hourly for the given duration and counts
// failures.
func monthsOfOperation(t *testing.T, e *Engine, hostID string, d time.Duration, s Stress) int {
	t.Helper()
	n := 0
	for at, step := t0, time.Hour; at.Before(t0.Add(d)); at = at.Add(step) {
		ev, err := e.StepHost(at, step, hostID, s)
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil {
			n++
		}
	}
	return n
}

func TestHealthyHostsRarelyFail(t *testing.T) {
	// A benign-condition fleet of 100 strong hosts over 3 months should
	// see close to zero transient failures — the control group's result.
	e := newEngine(t, "healthy-run")
	failures := 0
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("h%d", i)
		e.RegisterHost(id, false)
		if e.Weak(id) {
			continue // exclude lottery losers; tested separately
		}
		failures += monthsOfOperation(t, e, id, 90*24*time.Hour, benign)
	}
	// 100 hosts * 2160h * 1.2e-5/h ≈ 2.6 expected; allow noise.
	if failures > 8 {
		t.Errorf("%d failures across ~100 healthy host-quarters, want a handful at most", failures)
	}
}

func TestWeakHostFailsWithinWeeks(t *testing.T) {
	// A weak unit (host 15) should produce on the order of a couple of
	// failures in a 12-day tent stint, like the paper's Mar 7 and Mar 17.
	e := newEngine(t, "weak-run")
	// Force weakness by registering defective units until one is weak.
	id := ""
	for i := 0; i < 100; i++ {
		cand := fmt.Sprintf("w%d", i)
		e.RegisterHost(cand, true)
		if e.Weak(cand) {
			id = cand
			break
		}
	}
	if id == "" {
		t.Fatal("no weak unit in 100 defective draws")
	}
	total := 0
	runs := 40
	for r := 0; r < runs; r++ {
		er := newEngine(t, fmt.Sprintf("weak-run-%d", r))
		er.RegisterHost(id, true)
		er.hosts[id].weak = true // fix the lottery; we're testing the hazard
		total += monthsOfOperation(t, er, id, 12*24*time.Hour, benign)
	}
	mean := float64(total) / float64(runs)
	// 288h * 3.5e-3/h ≈ 1.0 expected events.
	if mean < 0.4 || mean > 2 {
		t.Errorf("weak host mean failures per 12 days = %.2f, want ≈ 1.0", mean)
	}
}

func TestColdAloneAddsNoHazard(t *testing.T) {
	// The paper's central negative result: sub-zero ambient temperatures
	// are not a certified failure cause. Equal hazard in cold still air
	// and benign conditions.
	e := newEngine(t, "cold")
	e.RegisterHost("01", false)
	cold := Stress{Ambient: -22, RH: 85, CaseAir: -5}
	if hc, hb := e.hazardPerHour(e.hosts["01"], cold), e.hazardPerHour(e.hosts["01"], benign); hc != hb {
		t.Errorf("cold hazard %v != benign hazard %v; cold alone must not matter", hc, hb)
	}
}

func TestHighRHAddsLittle(t *testing.T) {
	e := newEngine(t, "rh")
	e.RegisterHost("01", false)
	humid := benign
	humid.RH = 95
	hb := e.hazardPerHour(e.hosts["01"], benign)
	hh := e.hazardPerHour(e.hosts["01"], humid)
	if hh < hb {
		t.Error("extreme RH reduced hazard")
	}
	if hh > hb*1.3 {
		t.Errorf("extreme RH multiplied hazard by %.2f; paper says it is not a certified cause", hh/hb)
	}
}

func TestCondensationIsSerious(t *testing.T) {
	e := newEngine(t, "cond")
	e.RegisterHost("01", false)
	wet := benign
	wet.Condensing = true
	if h := e.hazardPerHour(e.hosts["01"], wet); h < e.hazardPerHour(e.hosts["01"], benign)*10 {
		t.Error("condensation factor too weak; §5 treats it as the real risk")
	}
}

func TestHotCaseAddsHazard(t *testing.T) {
	// Vendor B's actual defect mechanism: elevated case temperatures.
	e := newEngine(t, "hot")
	e.RegisterHost("01", false)
	hot := benign
	hot.CaseAir = 60
	if e.hazardPerHour(e.hosts["01"], hot) <= e.hazardPerHour(e.hosts["01"], benign) {
		t.Error("hot case did not raise hazard")
	}
}

func TestCyclingAddsHazard(t *testing.T) {
	e := newEngine(t, "cyc")
	e.RegisterHost("01", false)
	swingy := benign
	swingy.TempRatePerHour = 5
	if e.hazardPerHour(e.hosts["01"], swingy) <= e.hazardPerHour(e.hosts["01"], benign) {
		t.Error("thermal cycling did not raise hazard")
	}
}

func TestWhinySwitchLifetime(t *testing.T) {
	// "Both of the switches encountered a failure after a week or so."
	e := newEngine(t, "switches")
	var sum time.Duration
	n := 200
	for i := 0; i < n; i++ {
		sum += e.RegisterSwitch(fmt.Sprintf("sw%d", i), true)
	}
	mean := sum / time.Duration(n)
	p := DefaultParams()
	// Weibull(k=2.5, λ) has mean ≈ 0.887 λ.
	want := time.Duration(float64(p.WhinySwitchMTBF) * 0.887)
	if mean < want/2 || mean > want*2 {
		t.Errorf("whiny switch mean life %v, want ≈ %v", mean, want)
	}
}

func TestHealthySwitchOutlivesExperiment(t *testing.T) {
	e := newEngine(t, "goodsw")
	short := 0
	for i := 0; i < 100; i++ {
		if e.RegisterSwitch(fmt.Sprintf("sw%d", i), false) < 90*24*time.Hour {
			short++
		}
	}
	// Exponential with 10-year mean: P(<90 days) ≈ 2.4%.
	if short > 10 {
		t.Errorf("%d/100 healthy switches died within the experiment", short)
	}
}

func TestCycleCorruptedRate(t *testing.T) {
	// §4.2.2 calibration: ≈116k pages per cycle (3.2e9 pages / 27627
	// cycles) at 1/570e6 per page ≈ 2e-4 per cycle; over 27627 cycles
	// expect ≈ 5.6 corrupted runs.
	e := newEngine(t, "mem")
	pagesPerCycle := int64(3.2e9) / 27627
	bad := 0
	for i := 0; i < 27627; i++ {
		if e.CycleCorrupted("01", pagesPerCycle, false) {
			bad++
		}
	}
	if bad < 1 || bad > 14 {
		t.Errorf("%d corrupted cycles in 27627, want ≈ 5.6 (paper: 5)", bad)
	}
}

func TestECCNeverCorrupts(t *testing.T) {
	e := newEngine(t, "ecc")
	for i := 0; i < 100000; i++ {
		if e.CycleCorrupted("c11", 1e9, true) {
			t.Fatal("ECC host corrupted a cycle")
		}
	}
}

func TestCycleCorruptedEdgeCases(t *testing.T) {
	e := newEngine(t, "edge")
	if e.CycleCorrupted("01", 0, false) || e.CycleCorrupted("01", -5, false) {
		t.Error("non-positive page count corrupted")
	}
}

func TestEventLogOrderingAndFiltering(t *testing.T) {
	e := newEngine(t, "log")
	e.LogSwitchFailure(t0.Add(2*time.Hour), "sw2")
	e.LogMemoryCorruption(t0.Add(time.Hour), "06", "1 of 396 blocks corrupt")
	e.LogSwitchFailure(t0.Add(3*time.Hour), "sw1")
	log := e.Log()
	if len(log) != 3 {
		t.Fatalf("log length %d", len(log))
	}
	for i := 1; i < len(log); i++ {
		if log[i].At.Before(log[i-1].At) {
			t.Fatal("log not time-ordered")
		}
	}
	if evs := e.EventsFor("06"); len(evs) != 1 || evs[0].Component != Memory {
		t.Errorf("EventsFor(06) = %v", evs)
	}
	if evs := e.EventsFor("nobody"); len(evs) != 0 {
		t.Errorf("EventsFor(nobody) = %v", evs)
	}
}

func TestKindString(t *testing.T) {
	if Transient.String() != "transient" || Hard.String() != "hard" {
		t.Error("kind names wrong")
	}
	if Kind(7).String() == "" {
		t.Error("unknown kind unformatted")
	}
}

func TestPowOneMinus(t *testing.T) {
	if got := powOneMinus(0, 100); got != 1 {
		t.Errorf("p=0: %v", got)
	}
	if got := powOneMinus(1, 100); got != 0 {
		t.Errorf("p=1: %v", got)
	}
	// (1 - 1/570e6)^(3.2e9) ≈ exp(-5.614) ≈ 0.00365.
	got := powOneMinus(1/570e6, int64(3.2e9))
	if got < 0.003 || got > 0.0045 {
		t.Errorf("whole-experiment survival %v, want ≈ 0.0037", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Event {
		e := newEngine(t, "det")
		e.RegisterHost("15", true)
		e.hosts["15"].weak = true
		for at := t0; at.Before(t0.AddDate(0, 1, 0)); at = at.Add(time.Hour) {
			_, _ = e.StepHost(at, time.Hour, "15", benign)
		}
		return e.Log()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if !a[i].At.Equal(b[i].At) {
			t.Fatalf("event %d at %v vs %v", i, a[i].At, b[i].At)
		}
	}
}

func BenchmarkStepHost(b *testing.B) {
	e, err := NewEngine(DefaultParams(), simkernel.NewRNG("bench"))
	if err != nil {
		b.Fatal(err)
	}
	e.RegisterHost("01", false)
	for i := 0; i < b.N; i++ {
		_, _ = e.StepHost(t0.Add(time.Duration(i)*time.Minute), time.Minute, "01", benign)
	}
}

func BenchmarkCycleCorrupted(b *testing.B) {
	e, err := NewEngine(DefaultParams(), simkernel.NewRNG("bench"))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = e.CycleCorrupted("01", 116000, false)
	}
}
